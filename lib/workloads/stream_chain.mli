module Circuit = Quantum.Circuit

(** Lazily generated brickwork workload for the streaming pipeline.

    Alternating even/odd layers of nearest-neighbour two-qubit gates
    (with a sprinkle of single-qubit gates), emitted one gate at a time
    from a seeded RNG: a deterministic event stream that never needs
    materialising. Every qubit is touched at least once every two
    layers, so the qubit-inactivity span — and with it the streaming
    router's window — is O(n) however large [gates] grows. That makes
    this the canonical bench input for "peak heap independent of gate
    count". *)

val events : ?seed:int -> n:int -> gates:int -> unit -> unit -> Quantum.Gate.t option
(** [events ~n ~gates ()] returns a fresh pull function producing
    exactly [gates] gates, then [None]. Deterministic in [(seed, n)]
    (default seed 1), and prefix-stable: the stream at [gates = g] is
    the first [g] gates of the stream at any larger count, so growing a
    benchmark never changes the circuit it extends. Distinct pull
    functions are independent. Requires [n >= 2]. *)

val circuit : ?seed:int -> n:int -> gates:int -> unit -> Circuit.t
(** Materialised twin: the same gate sequence as {!events}, as a
    circuit on [n] qubits. *)

val last_use : ?seed:int -> n:int -> gates:int -> unit -> int array
(** Per-qubit last-use stream positions ([-1] = never used), computed
    by draining a fresh {!events} instance in O(n) memory — the
    [retire] input to {!Quantum.Dag.Window.create}. *)

val to_qasm_file : ?seed:int -> n:int -> gates:int -> string -> unit
(** Write the sequence as an OpenQASM file ([qreg q[n]; creg c[1]])
    gate by gate, in O(1) memory — generator for the CI stream-smoke
    job's million-gate inputs. *)
