(** SABRE algorithm configuration (paper Section V, "Algorithm
    Configuration"). *)

(** The three heuristic cost functions of Section IV-D, in increasing
    sophistication. Each level includes the previous one:
    - [Basic] — Eq. (1): plain sum of front-layer distances;
    - [Lookahead] — adds the normalised extended-set term with weight W;
    - [Decay] — Eq. (2): multiplies by the per-qubit decay factor to
      favour non-overlapping (parallel) SWAPs. *)
type heuristic = Basic | Lookahead | Decay

type t = {
  heuristic : heuristic;  (** cost function; paper default [Decay] *)
  extended_set_size : int;  (** |E|; paper fixes 20 *)
  extended_set_weight : float;  (** W ∈ [0,1); paper fixes 0.5 *)
  decay_increment : float;  (** δ; paper starts at 0.001 *)
  decay_reset_interval : int;
      (** reset decay every this many SWAP selections (paper: 5); it is
          also reset whenever a CNOT is executed *)
  trials : int;  (** random initial mappings tried; paper: 5 *)
  traversals : int;
      (** passes per trial; paper: 3 (forward–backward–forward). 1
          disables the reverse-traversal initial-mapping optimisation *)
  seed : int;  (** RNG seed for the random initial mappings *)
  stall_limit : int option;
      (** consecutive SWAP insertions without executing any gate before
          the anti-livelock fallback reroutes greedily along a shortest
          path; [None] selects [10 + 5 × diameter] *)
  commutation_aware : bool;
      (** build the dependency DAG with {!Quantum.Dag.of_circuit_commuting}
          so that commuting gates (shared CNOT controls/targets, diagonal
          runs) are unordered and the router may execute them in any
          convenient order. Off by default — the paper's Algorithm 1 uses
          the strict DAG *)
}

val default : t
(** The paper's evaluation configuration: Decay heuristic, |E| = 20,
    W = 0.5, δ = 0.001, reset every 5 steps, 5 trials, 3 traversals,
    seed 2019, strict (non-commutation-aware) DAG. *)

val validate : t -> (unit, string) result
(** Check parameter ranges (sizes non-negative, weight in [0,1), odd
    positive traversal count, positive trials). *)

val digest : t -> string
(** Canonical hex digest of every field. Floats are serialised as
    hex-floats ([%h]) so bit-equal configurations — including NaN,
    signed zero and subnormal weights — always produce the same digest,
    and any bit difference changes it. Used as a component of the
    compile-cache key. *)

val pp : Format.formatter -> t -> unit
