module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Sv = Sim.Statevector

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* QFT                                                                 *)
(* ------------------------------------------------------------------ *)

let test_qft_sizes () =
  (* n Hadamards + 5 elementary gates per controlled phase *)
  List.iter
    (fun n ->
      let expected = n + (5 * n * (n - 1) / 2) in
      check Alcotest.int
        (Printf.sprintf "qft %d" n)
        expected
        (Circuit.length (Workloads.Qft.circuit n)))
    [ 2; 5; 10; 13; 20 ]

let test_qft_unitary_small () =
  (* QFT maps |0...0> to the uniform superposition *)
  let n = 3 in
  let c = Workloads.Qft.circuit n in
  let s = Sv.create n in
  Sv.apply_circuit s c;
  let amp = 1.0 /. Float.sqrt (float_of_int (1 lsl n)) in
  for k = 0 to (1 lsl n) - 1 do
    check (Alcotest.float 1e-9) "uniform magnitude" amp
      (Complex.norm (Sv.amplitude s k))
  done

let test_qft_dense_interactions () =
  let n = 6 in
  let pairs =
    Circuit.two_qubit_interactions (Workloads.Qft.circuit n)
    |> List.map (fun (a, b) -> (min a b, max a b))
    |> List.sort_uniq compare
  in
  check Alcotest.int "all pairs interact" (n * (n - 1) / 2) (List.length pairs)

let test_qft_approximate_smaller () =
  let full = Workloads.Qft.circuit 8 in
  let approx = Workloads.Qft.approximate 8 ~degree:3 in
  check Alcotest.bool "fewer gates" true
    (Circuit.length approx < Circuit.length full)

(* ------------------------------------------------------------------ *)
(* Ising                                                               *)
(* ------------------------------------------------------------------ *)

let test_ising_size_formula () =
  List.iter
    (fun (n, steps) ->
      let expected = n + (steps * ((3 * (n - 1)) + n)) in
      check Alcotest.int
        (Printf.sprintf "ising n=%d steps=%d" n steps)
        expected
        (Circuit.length (Workloads.Ising.circuit ~steps n)))
    [ (4, 1); (10, 13); (16, 13) ]

let test_ising_nearest_neighbor_only () =
  let c = Workloads.Ising.circuit ~steps:3 8 in
  List.iter
    (fun (a, b) ->
      check Alcotest.int "adjacent spins" 1 (abs (a - b)))
    (Circuit.two_qubit_interactions c)

let test_ising_interaction_pairs () =
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "bonds"
    [ (0, 1); (1, 2); (2, 3) ]
    (Workloads.Ising.interaction_pairs 4)

(* ------------------------------------------------------------------ *)
(* GHZ / BV / Adder                                                    *)
(* ------------------------------------------------------------------ *)

let test_ghz_state () =
  let n = 4 in
  let s = Sv.create n in
  Sv.apply_circuit s (Workloads.Ghz.circuit n);
  let r = 1.0 /. Float.sqrt 2.0 in
  check (Alcotest.float 1e-9) "|0000>" r (Complex.norm (Sv.amplitude s 0));
  check (Alcotest.float 1e-9) "|1111>" r
    (Complex.norm (Sv.amplitude s ((1 lsl n) - 1)));
  check (Alcotest.float 1e-9) "nothing else" 0.0
    (Complex.norm (Sv.amplitude s 1))

let test_ghz_star_equivalent_state () =
  let n = 4 in
  let a = Sv.create n and b = Sv.create n in
  Sv.apply_circuit a (Workloads.Ghz.circuit n);
  Sv.apply_circuit b (Workloads.Ghz.star n);
  check Alcotest.bool "same state" true (Sv.approx_equal a b)

let test_bv_recovers_hidden_string () =
  let n = 5 and hidden = 0b10110 in
  let c = Workloads.Bv.circuit ~hidden n in
  let unitary = Circuit.filter (function Gate.Measure _ -> false | _ -> true) c in
  let s = Sv.create (n + 1) in
  Sv.apply_circuit s unitary;
  (* data qubits must hold exactly the hidden string *)
  for q = 0 to n - 1 do
    let expected = if hidden land (1 lsl q) <> 0 then 1.0 else 0.0 in
    check (Alcotest.float 1e-9)
      (Printf.sprintf "bit %d" q)
      expected (Sv.probability s q)
  done

let test_adder_adds () =
  let bits = 2 in
  let c = Workloads.Adder.circuit bits in
  let n = Workloads.Adder.n_qubits_for bits in
  check Alcotest.int "qubits" 6 n;
  (* exhaustive: for all a, b in [0,3], prepare |a>|b>, run, read b+a *)
  let a_bit i = 1 + (2 * i) and b_bit i = 2 + (2 * i) in
  for a = 0 to 3 do
    for b = 0 to 3 do
      let input = ref 0 in
      for i = 0 to bits - 1 do
        if a land (1 lsl i) <> 0 then input := !input lor (1 lsl a_bit i);
        if b land (1 lsl i) <> 0 then input := !input lor (1 lsl b_bit i)
      done;
      let s = Sv.of_basis n !input in
      Sv.apply_circuit s c;
      (* find the basis state with amplitude ~1 *)
      let result = ref (-1) in
      for k = 0 to (1 lsl n) - 1 do
        if Complex.norm (Sv.amplitude s k) > 0.99 then result := k
      done;
      check Alcotest.bool "classical output" true (!result >= 0);
      let sum = ref 0 in
      for i = 0 to bits - 1 do
        if !result land (1 lsl b_bit i) <> 0 then sum := !sum lor (1 lsl i)
      done;
      if !result land (1 lsl ((2 * bits) + 1)) <> 0 then
        sum := !sum lor (1 lsl bits);
      check Alcotest.int (Printf.sprintf "%d + %d" a b) (a + b) !sum;
      (* a register preserved *)
      let a_out = ref 0 in
      for i = 0 to bits - 1 do
        if !result land (1 lsl a_bit i) <> 0 then a_out := !a_out lor (1 lsl i)
      done;
      check Alcotest.int "a preserved" a !a_out
    done
  done

(* ------------------------------------------------------------------ *)
(* QAOA / Grover                                                       *)
(* ------------------------------------------------------------------ *)

let test_qaoa_shape () =
  let edges = Workloads.Qaoa.random_graph ~seed:5 ~n:8 ~edge_prob:0.5 () in
  check Alcotest.bool "some edges" true (List.length edges > 0);
  List.iter
    (fun (a, b) ->
      check Alcotest.bool "valid edge" true (a >= 0 && b < 8 && a < b))
    edges;
  let c = Workloads.Qaoa.circuit ~rounds:3 ~n:8 ~edges () in
  (* per round: 2 CNOTs per edge; plus H layer, mixers, measures *)
  check Alcotest.int "cnot count" (3 * 2 * List.length edges)
    (Circuit.two_qubit_count c);
  (* interaction pairs are exactly the problem edges *)
  let pairs =
    Circuit.two_qubit_interactions c
    |> List.map (fun (a, b) -> (min a b, max a b))
    |> List.sort_uniq compare
  in
  check Alcotest.bool "interactions = problem graph" true (pairs = edges)

let test_qaoa_deterministic () =
  let a = Workloads.Qaoa.maxcut_instance ~seed:9 ~n:6 ~edge_prob:0.4 () in
  let b = Workloads.Qaoa.maxcut_instance ~seed:9 ~n:6 ~edge_prob:0.4 () in
  check Alcotest.bool "same" true (Circuit.equal a b)

let test_qaoa_edge_prob_extremes () =
  check Alcotest.int "p=0 no edges" 0
    (List.length (Workloads.Qaoa.random_graph ~n:6 ~edge_prob:0.0 ()));
  check Alcotest.int "p=1 complete" 15
    (List.length (Workloads.Qaoa.random_graph ~n:6 ~edge_prob:1.0 ()))

let test_grover_finds_marked () =
  List.iter
    (fun (n, marked) ->
      let p = Workloads.Grover.success_probability ~marked n in
      check Alcotest.bool
        (Printf.sprintf "n=%d marked=%d p=%.3f" n marked p)
        true (p > 0.9))
    [ (2, 3); (2, 0); (3, 5); (4, 9); (5, 17) ]

let test_grover_uniform_without_iterations () =
  (* sanity on the amplification: one iteration beats the uniform prior *)
  let n = 4 in
  let uniform = 1.0 /. 16.0 in
  let p =
    Complex.norm2
      (let c =
         Circuit.filter
           (function Gate.Measure _ -> false | _ -> true)
           (Workloads.Grover.circuit ~iterations:1 ~marked:7 n)
       in
       let s = Sim.Statevector.create (Circuit.n_qubits c) in
       Sim.Statevector.apply_circuit s c;
       Sim.Statevector.amplitude s 7)
  in
  check Alcotest.bool "amplified" true (p > 2.0 *. uniform)

let test_grover_elementary_only () =
  let c = Workloads.Grover.circuit ~marked:3 4 in
  check Alcotest.bool "two-qubit gates only cx/cz" true
    (List.for_all
       (fun g -> List.length (Gate.qubits g) <= 2)
       (Circuit.gates c))

let test_grover_rejects_bad_args () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "marked too big" true
    (raises (fun () -> Workloads.Grover.circuit ~marked:8 3));
  check Alcotest.bool "n too big" true
    (raises (fun () -> Workloads.Grover.circuit ~marked:0 13))

(* ------------------------------------------------------------------ *)
(* Random reversible + suite                                           *)
(* ------------------------------------------------------------------ *)

let test_random_reversible_exact_size () =
  let c = Workloads.Random_reversible.circuit ~n:7 ~gates:123 () in
  check Alcotest.int "width" 7 (Circuit.n_qubits c);
  check Alcotest.int "count" 123 (Circuit.length c)

let test_toffoli_network_exact_size () =
  let c = Workloads.Random_reversible.toffoli_network ~seed:2 ~n:6 ~gates:200 () in
  check Alcotest.int "width" 6 (Circuit.n_qubits c);
  check Alcotest.int "count" 200 (Circuit.length c);
  check Alcotest.bool "elementary only" true
    (List.for_all
       (fun g ->
         match g with Gate.Single _ | Gate.Cnot _ -> true | _ -> false)
       (Circuit.gates c))

let test_random_reversible_deterministic () =
  let a = Workloads.Random_reversible.of_name ~name:"x" ~n:5 ~gates:50 in
  let b = Workloads.Random_reversible.of_name ~name:"x" ~n:5 ~gates:50 in
  let d = Workloads.Random_reversible.of_name ~name:"y" ~n:5 ~gates:50 in
  check Alcotest.bool "same name same circuit" true (Circuit.equal a b);
  check Alcotest.bool "different name different circuit" false
    (Circuit.equal a d)

let test_random_reversible_two_qubit_ratio () =
  let c =
    Workloads.Random_reversible.circuit ~seed:3 ~two_qubit_ratio:0.7 ~n:10
      ~gates:2000 ()
  in
  let ratio =
    float_of_int (Circuit.two_qubit_count c) /. float_of_int (Circuit.length c)
  in
  check Alcotest.bool
    (Printf.sprintf "ratio %.2f near 0.7" ratio)
    true
    (ratio > 0.6 && ratio < 0.8)

let test_random_reversible_hot_bias () =
  (* hot qubits attract more than their uniform share of CNOT endpoints *)
  let n = 10 in
  let c =
    Workloads.Random_reversible.circuit ~seed:4 ~hot_fraction:0.3 ~hot_bias:0.6
      ~n ~gates:3000 ()
  in
  let counts = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      counts.(a) <- counts.(a) + 1;
      counts.(b) <- counts.(b) + 1)
    (Circuit.two_qubit_interactions c);
  let hot = counts.(0) + counts.(1) + counts.(2) in
  let total = Array.fold_left ( + ) 0 counts in
  let share = float_of_int hot /. float_of_int total in
  check Alcotest.bool
    (Printf.sprintf "hot share %.2f > uniform 0.3" share)
    true (share > 0.4)

let test_suite_shape () =
  check Alcotest.int "26 rows" 26 (List.length Workloads.Suite.all);
  check Alcotest.int "5 small" 5
    (List.length (Workloads.Suite.by_class Workloads.Suite.Small));
  check Alcotest.int "3 sim" 3
    (List.length (Workloads.Suite.by_class Workloads.Suite.Sim));
  check Alcotest.int "4 qft" 4
    (List.length (Workloads.Suite.by_class Workloads.Suite.Qft));
  check Alcotest.int "14 large" 14
    (List.length (Workloads.Suite.by_class Workloads.Suite.Large));
  check Alcotest.int "9 figure-8 rows" 9
    (List.length Workloads.Suite.figure8_names)

let test_suite_widths_match_paper () =
  List.iter
    (fun r ->
      let c = Lazy.force r.Workloads.Suite.circuit in
      check Alcotest.int
        (r.Workloads.Suite.name ^ " width")
        r.Workloads.Suite.n (Circuit.n_qubits c))
    Workloads.Suite.all

let test_suite_synthetic_sizes_exact () =
  List.iter
    (fun r ->
      match r.Workloads.Suite.cls with
      | Workloads.Suite.Small | Workloads.Suite.Large ->
        let c = Lazy.force r.Workloads.Suite.circuit in
        check Alcotest.int
          (r.Workloads.Suite.name ^ " gates")
          r.Workloads.Suite.paper_g_ori
          (Quantum.Decompose.elementary_gate_count c)
      | Workloads.Suite.Sim | Workloads.Suite.Qft -> ())
    Workloads.Suite.all

let test_suite_find () =
  let r = Workloads.Suite.find "qft_16" in
  check Alcotest.int "n" 16 r.Workloads.Suite.n;
  check Alcotest.bool "not found raises" true
    (match Workloads.Suite.find "nope" with
    | exception Not_found -> true
    | _ -> false)

let suite =
  [
    tc "qft sizes" `Quick test_qft_sizes;
    tc "qft unitary on |0..0>" `Quick test_qft_unitary_small;
    tc "qft dense interactions" `Quick test_qft_dense_interactions;
    tc "approximate qft smaller" `Quick test_qft_approximate_smaller;
    tc "ising size formula" `Quick test_ising_size_formula;
    tc "ising nearest-neighbour only" `Quick test_ising_nearest_neighbor_only;
    tc "ising interaction pairs" `Quick test_ising_interaction_pairs;
    tc "ghz state" `Quick test_ghz_state;
    tc "ghz star same state" `Quick test_ghz_star_equivalent_state;
    tc "bv recovers hidden string" `Quick test_bv_recovers_hidden_string;
    tc "adder adds (exhaustive 2-bit)" `Slow test_adder_adds;
    tc "qaoa shape" `Quick test_qaoa_shape;
    tc "qaoa deterministic" `Quick test_qaoa_deterministic;
    tc "qaoa edge-prob extremes" `Quick test_qaoa_edge_prob_extremes;
    tc "grover finds marked" `Slow test_grover_finds_marked;
    tc "grover amplifies" `Quick test_grover_uniform_without_iterations;
    tc "grover elementary gates" `Quick test_grover_elementary_only;
    tc "grover rejects bad args" `Quick test_grover_rejects_bad_args;
    tc "random reversible exact size" `Quick test_random_reversible_exact_size;
    tc "toffoli network exact size" `Quick test_toffoli_network_exact_size;
    tc "random reversible deterministic" `Quick test_random_reversible_deterministic;
    tc "random reversible 2q ratio" `Quick test_random_reversible_two_qubit_ratio;
    tc "random reversible hot bias" `Quick test_random_reversible_hot_bias;
    tc "suite shape" `Quick test_suite_shape;
    tc "suite widths match paper" `Quick test_suite_widths_match_paper;
    tc "suite synthetic sizes exact" `Quick test_suite_synthetic_sizes_exact;
    tc "suite find" `Quick test_suite_find;
  ]
