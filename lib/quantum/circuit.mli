(** Quantum circuits: an ordered gate list over a fixed qubit register.

    A circuit is immutable; transformation passes build new circuits. The
    order of the gate array is a topological order of the dependency DAG
    (see {!Dag}); two circuits with the same per-qubit gate sequences are
    semantically identical even if independent gates are interleaved
    differently (see {!canonical_key}). *)

type t = private {
  n_qubits : int;  (** register size; qubit indices range over [0..n-1] *)
  n_clbits : int;  (** classical register size used by measurements *)
  gates : Gate.t array;  (** program order *)
}

val create : ?n_clbits:int -> n_qubits:int -> Gate.t list -> t
(** [create ~n_qubits gates] validates every gate against the register
    size and builds a circuit. Raises [Invalid_argument] on an invalid
    gate or a negative register size. [n_clbits] defaults to [n_qubits]. *)

val empty : int -> t
(** [empty n] is the gate-free circuit on [n] qubits. *)

val n_qubits : t -> int
val n_clbits : t -> int

val gates : t -> Gate.t list
(** Gates in program order. *)

val gate_array : t -> Gate.t array
(** Underlying array (a fresh copy; safe to mutate). *)

val length : t -> int
(** Total number of gates, barriers and measurements included. *)

val gate_count : t -> int
(** Number of unitary gates (barriers and measurements excluded). *)

val two_qubit_count : t -> int
(** Number of two-qubit gates (CNOT, CZ, SWAP). *)

val single_qubit_count : t -> int
(** Number of single-qubit unitary gates. *)

val count_by_name : t -> (string * int) list
(** Histogram of {!Gate.name} over the circuit, sorted by name. *)

val append : t -> Gate.t -> t
(** [append c g] validates [g] and adds it at the end. *)

val concat : t -> t -> t
(** [concat a b] runs [a] then [b]. Register sizes must agree. *)

val map_qubits : (int -> int) -> t -> t
(** [map_qubits f c] renames qubits via [f]; [f] must be injective on
    [0 .. n-1] with image inside the register (checked). *)

val reverse : t -> t
(** [reverse c] is the paper's "reverse circuit" (Section IV-C2): same
    gates in reverse order, each replaced by its inverse. Measurements are
    dropped (they have no inverse and never constrain routing). *)

val filter : (Gate.t -> bool) -> t -> t
(** Keep only gates satisfying the predicate. *)

val two_qubit_interactions : t -> (int * int) list
(** Ordered list of (q1, q2) pairs of every two-qubit gate. *)

val used_qubits : t -> int list
(** Sorted list of qubit indices touched by at least one gate. *)

val canonical_key : t -> string
(** A canonical digest of the circuit's per-qubit gate sequences: two
    circuits have equal keys iff they are equal as partial orders of
    gates, i.e. one can be reordered into the other by commuting
    independent gates. Used to verify that a routed circuit preserves the
    original program's semantics after un-mapping. *)

val equal_up_to_reordering : t -> t -> bool
(** [equal_up_to_reordering a b] compares {!canonical_key}s. *)

val digest : t -> string
(** Strict content digest over the gates in program order (plus register
    sizes). Unlike {!canonical_key} this distinguishes circuits that
    differ only by commuting-gate interleavings — necessary for
    memoizing routing results, whose output depends on the exact gate
    order. Gate parameters are serialised bit-exactly
    ({!Gate.digest_string}), so equal digests imply {!equal} circuits
    (modulo MD5 collisions, and with all NaN parameter payloads
    conflated); the converse holds exactly. *)

val equal : t -> t -> bool
(** Strict structural equality (same gates, same order). *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing of the circuit. *)

val to_string : t -> string
