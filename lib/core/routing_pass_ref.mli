module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling

(** Frozen pre-flat-core copy of {!Routing_pass} (list front layer,
    per-decision extended-set rebuild, square distance matrix).

    Kept for one release cycle as the differential-testing reference:
    the [sabre-ref] router routes through this implementation, and the
    fuzz harness cross-checks that it and the flat-core {!Routing_pass}
    produce byte-identical circuits. Do not optimise this file — its
    value is being the old code. *)

type result = {
  physical : Circuit.t;  (** hardware-compliant output circuit *)
  final_mapping : Mapping.t;  (** π after the last gate *)
  n_swaps : int;  (** SWAPs inserted (each costs 3 CNOTs) *)
  search_steps : int;  (** heuristic SWAP selections performed *)
  fallback_swaps : int;
      (** SWAPs inserted by the anti-livelock shortest-path fallback; 0
          in normal operation *)
}

val run :
  ?dist:float array array ->
  Config.t -> Coupling.t -> Dag.t -> Mapping.t -> result
(** [run config coupling dag initial] routes the DAG's circuit. [dist]
    overrides the hop-count distance matrix with a custom routing metric
    (e.g. {!Hardware.Noise.swap_reliability_distance} for fidelity-aware
    mapping); it must be non-negative, symmetric, zero on the diagonal
    and finite between connected qubits. The
    initial mapping is not mutated. Raises [Invalid_argument] when the
    circuit needs more logical qubits than the device has physical ones,
    or when the coupling graph is disconnected while the circuit requires
    interaction across components. *)
