test/suite_depth.ml: Alcotest Array List Quantum Workloads
