lib/baseline/layering.ml: Array Hashtbl List Quantum
