module Circuit = Quantum.Circuit
module Depth = Quantum.Depth
module Decompose = Quantum.Decompose

type scoring = {
  decisions : int;
  candidates : int;
  delta_terms : int;
  full_terms : int;
}

let scoring_zero =
  { decisions = 0; candidates = 0; delta_terms = 0; full_terms = 0 }

let scoring_add a b =
  {
    decisions = a.decisions + b.decisions;
    candidates = a.candidates + b.candidates;
    delta_terms = a.delta_terms + b.delta_terms;
    full_terms = a.full_terms + b.full_terms;
  }

type t = {
  n_swaps : int;
  added_gates : int;
  original_gates : int;
  total_gates : int;
  original_depth : int;
  routed_depth : int;
  search_steps : int;
  fallback_swaps : int;
  traversals_run : int;
  time_s : float;
  first_traversal_swaps : int;
  scoring : scoring;
}

let summary ~original ~routed ~n_swaps ~search_steps ~fallback_swaps
    ~traversals_run ~time_s ~first_traversal_swaps ~scoring =
  let original_gates = Decompose.elementary_gate_count original in
  {
    n_swaps;
    added_gates = 3 * n_swaps;
    original_gates;
    total_gates = original_gates + (3 * n_swaps);
    original_depth = Depth.depth original;
    routed_depth = Depth.depth_swap3 routed;
    search_steps;
    fallback_swaps;
    traversals_run;
    time_s;
    first_traversal_swaps;
    scoring;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>swaps inserted : %d (gates +%d)@,\
     gates          : %d -> %d@,\
     depth          : %d -> %d@,\
     search steps   : %d (fallback swaps %d)@,\
     traversals     : %d in %.3fs@,\
     scoring        : %d candidates, %d/%d terms@]"
    s.n_swaps s.added_gates s.original_gates s.total_gates s.original_depth
    s.routed_depth s.search_steps s.fallback_swaps s.traversals_run s.time_s
    s.scoring.candidates s.scoring.delta_terms s.scoring.full_terms
