(** OpenQASM 2.0 reader and writer.

    Supports the subset used by the paper's benchmark suites (QISKit,
    RevLib exports, Quipper/ScaffCC compilations): [OPENQASM 2.0] header,
    [include] (ignored), multiple [qreg]/[creg] declarations (flattened
    into one index space in declaration order), gate applications from
    qelib1 ([id x y z h s sdg t tdg rx ry rz u1 u2 u3 cx cz swap ccx]),
    whole-register broadcast of single-qubit gates, [barrier] and
    [measure]. Parameter expressions understand numbers, [pi], unary
    minus, [+ - * /] and [^], with parentheses.

    User-defined gates are supported: [gate name(params) qargs { body }]
    bodies may call built-in gates and previously defined gates, with
    parameter expressions over the formals; applications expand the body
    inline (macro semantics, as the OpenQASM 2.0 spec prescribes).
    [opaque] declarations parse, but applying an opaque gate is an error
    since it has no circuit semantics.

    [ccx] is expanded with {!Decompose.toffoli} at parse time so that the
    resulting circuit lies in the paper's {single-qubit, CNOT} gate set
    extended with CZ/SWAP.

    Parsing is built on the incremental {!Qasm_stream} frontend:
    {!of_file} lexes from the channel chunk-by-chunk instead of slurping
    the file, and parse errors carry both line and column. *)

exception Parse_error of { line : int; column : int; message : string }
(** Alias of {!Qasm_stream.Parse_error}; [line] and [column] are
    1-based. *)

val of_string : string -> Circuit.t
(** Parse a full OpenQASM 2.0 program. Raises {!Parse_error}. *)

val of_file : string -> Circuit.t
(** Parse from a file path, reading the channel incrementally. The
    channel is closed on all exits, including parse errors. Raises
    {!Parse_error} or [Sys_error]. *)

val to_string : Circuit.t -> string
(** Print a circuit as an OpenQASM 2.0 program over one register [q]. *)

val to_file : string -> Circuit.t -> unit
(** Write {!to_string} output to the given path. *)

val output_prelude : out_channel -> n_qubits:int -> n_clbits:int -> unit
(** Write the program header ([OPENQASM]/[include]/[qreg]/[creg]) —
    byte-identical to the prefix {!to_string} emits for a circuit with
    these dimensions. *)

val output_gate : out_channel -> Gate.t -> unit
(** Write one gate line, byte-identical to the corresponding line of
    {!to_string}. [output_prelude] + repeated [output_gate] lets the
    streaming path serialise a routed circuit without materialising
    it. *)
