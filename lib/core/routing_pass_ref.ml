module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling

type result = {
  physical : Circuit.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  search_steps : int;
  fallback_swaps : int;
}

(* Mutable search state for one traversal. *)
type state = {
  config : Config.t;
  coupling : Coupling.t;
  dist : float array array;
  dag : Dag.t;
  mapping : Mapping.t;  (* private copy, updated in place *)
  remaining : int array;  (* unexecuted predecessor count per node *)
  ready : int Queue.t;  (* nodes whose predecessors all executed *)
  mutable front : int list;  (* ready two-qubit nodes, oldest first *)
  mutable out_rev : Gate.t list;  (* emitted physical gates, reversed *)
  decay : float array;  (* per physical qubit; 1.0 at rest *)
  mutable steps_since_reset : int;
  mutable stall : int;  (* swaps since the last gate execution *)
  stall_limit : int;
  mutable n_swaps : int;
  mutable search_steps : int;
  mutable fallback_swaps : int;
}

let reset_decay st =
  Array.fill st.decay 0 (Array.length st.decay) 1.0;
  st.steps_since_reset <- 0

let emit st gate = st.out_rev <- gate :: st.out_rev

(* Emit the logical gate at DAG node [i], remapped through the current π,
   and release its successors. *)
let execute_node st i =
  let to_physical q = Mapping.to_physical st.mapping q in
  emit st (Gate.remap to_physical (Dag.gate st.dag i));
  List.iter
    (fun j ->
      st.remaining.(j) <- st.remaining.(j) - 1;
      if st.remaining.(j) = 0 then Queue.add j st.ready)
    (Dag.successors st.dag i);
  st.stall <- 0;
  if Gate.is_two_qubit (Dag.gate st.dag i) then reset_decay st

let executable st i =
  match Gate.two_qubit_pair (Dag.gate st.dag i) with
  | None -> true
  | Some (q1, q2) ->
    Coupling.connected st.coupling
      (Mapping.to_physical st.mapping q1)
      (Mapping.to_physical st.mapping q2)

(* Drain the ready queue and the front layer until no gate can execute.
   Returns once progress stops; the front then holds exactly the blocked
   two-qubit gates (possibly none, if the circuit is finished). *)
let rec advance st =
  let progressed = ref false in
  while not (Queue.is_empty st.ready) do
    let i = Queue.pop st.ready in
    if Gate.is_two_qubit (Dag.gate st.dag i) then
      st.front <- st.front @ [ i ]
    else begin
      execute_node st i;
      progressed := true
    end
  done;
  let runnable, blocked = List.partition (executable st) st.front in
  if runnable <> [] then begin
    st.front <- blocked;
    List.iter (execute_node st) runnable;
    progressed := true
  end;
  if !progressed then advance st

(* The extended set E (Section IV-D): breadth-first successors of the
   front layer, collecting up to [size] two-qubit gates. *)
let extended_set st =
  let size = st.config.extended_set_size in
  if size = 0 then []
  else begin
    let visited = Hashtbl.create 64 in
    let q = Queue.create () in
    List.iter
      (fun i -> List.iter (fun j -> Queue.add j q) (Dag.successors st.dag i))
      st.front;
    let collected = ref [] in
    let count = ref 0 in
    while !count < size && not (Queue.is_empty q) do
      let i = Queue.pop q in
      if not (Hashtbl.mem visited i) then begin
        Hashtbl.add visited i ();
        (match Gate.two_qubit_pair (Dag.gate st.dag i) with
        | Some pair ->
          collected := pair :: !collected;
          incr count
        | None -> ());
        List.iter (fun j -> Queue.add j q) (Dag.successors st.dag i)
      end
    done;
    List.rev !collected
  end

(* Candidate SWAPs: coupling-graph edges with at least one endpoint
   occupied by a logical qubit of a front-layer gate (Section IV-C1). *)
let swap_candidates st =
  let seen = Hashtbl.create 32 in
  let add p p' =
    let e = (min p p', max p p') in
    if not (Hashtbl.mem seen e) then Hashtbl.add seen e ()
  in
  List.iter
    (fun i ->
      List.iter
        (fun q ->
          let p = Mapping.to_physical st.mapping q in
          List.iter (add p) (Coupling.neighbors st.coupling p))
        (Gate.qubits (Dag.gate st.dag i)))
    st.front;
  Hashtbl.fold (fun e () acc -> e :: acc) seen [] |> List.sort compare

let front_pairs st =
  List.filter_map (fun i -> Gate.two_qubit_pair (Dag.gate st.dag i)) st.front

let apply_swap st ~fallback (p1, p2) =
  emit st (Gate.Swap (p1, p2));
  Mapping.swap_physical_inplace st.mapping p1 p2;
  st.n_swaps <- st.n_swaps + 1;
  if fallback then st.fallback_swaps <- st.fallback_swaps + 1

let choose_and_apply_swap st =
  let front = front_pairs st in
  let extended =
    match st.config.heuristic with
    | Config.Basic -> []
    | Config.Lookahead | Config.Decay -> extended_set st
  in
  let l2p = Mapping.l2p_array st.mapping in
  let score (p1, p2) =
    (* tentatively apply the swap on the raw array *)
    let swap_l2p () =
      let l1 = Mapping.to_logical st.mapping p1
      and l2 = Mapping.to_logical st.mapping p2 in
      if l1 >= 0 then l2p.(l1) <- p2;
      if l2 >= 0 then l2p.(l2) <- p1;
      fun () ->
        if l1 >= 0 then l2p.(l1) <- p1;
        if l2 >= 0 then l2p.(l2) <- p2
    in
    let undo = swap_l2p () in
    let v =
      Heuristic.score ~heuristic:st.config.heuristic ~dist:st.dist ~l2p ~front
        ~extended ~weight:st.config.extended_set_weight ~decay:st.decay ~p1
        ~p2
    in
    undo ();
    v
  in
  let candidates = swap_candidates st in
  let best, _ =
    match candidates with
    | [] ->
      (* Cannot happen on a connected graph with a non-empty front: every
         occupied qubit has neighbours. *)
      invalid_arg "Routing_pass: no SWAP candidates (disconnected device?)"
    | first :: rest ->
      List.fold_left
        (fun (be, bs) e ->
          let s = score e in
          if s < bs then (e, s) else (be, bs))
        (first, score first) rest
  in
  apply_swap st ~fallback:false best;
  st.search_steps <- st.search_steps + 1;
  st.stall <- st.stall + 1;
  (* decay bookkeeping (Section IV-C3 / V "Algorithm Configuration") *)
  if st.config.heuristic = Config.Decay then begin
    let p1, p2 = best in
    st.decay.(p1) <- st.decay.(p1) +. st.config.decay_increment;
    st.decay.(p2) <- st.decay.(p2) +. st.config.decay_increment;
    st.steps_since_reset <- st.steps_since_reset + 1;
    if st.steps_since_reset >= st.config.decay_reset_interval then
      reset_decay st
  end

(* Anti-livelock fallback: force the oldest front gate executable by
   swapping one operand along a shortest path to the other. *)
let fallback_route st =
  match st.front with
  | [] -> ()
  | i :: _ ->
    (match Gate.two_qubit_pair (Dag.gate st.dag i) with
    | None -> assert false
    | Some (q1, q2) ->
      let p1 = Mapping.to_physical st.mapping q1
      and p2 = Mapping.to_physical st.mapping q2 in
      let path = Coupling.shortest_path st.coupling p1 p2 in
      let rec walk = function
        | a :: (b :: (_ :: _ as rest)) ->
          apply_swap st ~fallback:true (a, b);
          walk (b :: rest)
        | _ -> ()
      in
      walk path);
    reset_decay st;
    st.stall <- 0

let float_distance_matrix coupling =
  let d = Coupling.distance_matrix coupling in
  Array.map (Array.map float_of_int) d

let run ?dist config coupling dag initial =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Routing_pass_ref.run: " ^ msg));
  let circuit = Dag.circuit dag in
  if Circuit.n_qubits circuit > Coupling.n_qubits coupling then
    invalid_arg "Routing_pass_ref.run: circuit wider than device";
  if Mapping.n_logical initial <> Circuit.n_qubits circuit then
    invalid_arg "Routing_pass_ref.run: mapping arity mismatch";
  let n = Dag.n_nodes dag in
  let st =
    {
      config;
      coupling;
      dist =
        (match dist with
        | Some d -> d
        | None -> float_distance_matrix coupling);
      dag;
      mapping = Mapping.copy initial;
      remaining = Array.init n (Dag.in_degree dag);
      ready = Queue.create ();
      front = [];
      out_rev = [];
      decay = Array.make (Coupling.n_qubits coupling) 1.0;
      steps_since_reset = 0;
      stall = 0;
      stall_limit =
        (match config.stall_limit with
        | Some s -> s
        | None -> 10 + (5 * Coupling.diameter coupling));
      n_swaps = 0;
      search_steps = 0;
      fallback_swaps = 0;
    }
  in
  List.iter (fun i -> Queue.add i st.ready) (Dag.initial_front dag);
  advance st;
  while st.front <> [] do
    if st.stall > st.stall_limit then fallback_route st
    else choose_and_apply_swap st;
    advance st
  done;
  {
    physical =
      Circuit.create
        ~n_qubits:(Coupling.n_qubits coupling)
        ~n_clbits:(Circuit.n_clbits circuit)
        (List.rev st.out_rev);
    final_mapping = st.mapping;
    n_swaps = st.n_swaps;
    search_steps = st.search_steps;
    fallback_swaps = st.fallback_swaps;
  }
