module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

let drop_measurements c =
  Circuit.filter (function Gate.Measure _ -> false | _ -> true) c

(* Extend a logical->physical mapping over n logical qubits to a full
   permutation on n_physical indices: leftover "virtual" slots n.. are
   assigned the unused physical qubits in ascending order. Returns [home]
   with home.(v) = physical position of virtual qubit v. *)
let extend_mapping mapping ~n_physical =
  let n = Array.length mapping in
  let used = Array.make n_physical false in
  Array.iter (fun p -> used.(p) <- true) mapping;
  let leftovers = ref [] in
  for p = n_physical - 1 downto 0 do
    if not used.(p) then leftovers := p :: !leftovers
  done;
  let home = Array.make n_physical (-1) in
  Array.blit mapping 0 home 0 n;
  List.iteri (fun i p -> home.(n + i) <- p) !leftovers;
  home

(* Permutation argument for Statevector.permute such that result qubit
   home.(v) carries source qubit v. *)
let to_physical_perm home =
  let n = Array.length home in
  let p = Array.make n (-1) in
  Array.iteri (fun v ph -> p.(ph) <- v) home;
  p

let routed_equivalent ?(states = 4) ?(seed = 42) ?(tol = 1e-8) ~initial ~final
    ~logical ~physical () =
  let n = Circuit.n_qubits logical in
  let n_physical = Circuit.n_qubits physical in
  if Array.length initial <> n || Array.length final <> n then
    invalid_arg "Equivalence.routed_equivalent: mapping arity mismatch";
  let logical = drop_measurements logical in
  let physical = drop_measurements physical in
  let rng = Random.State.make [| seed |] in
  let home_in = extend_mapping initial ~n_physical in
  let home_out = extend_mapping final ~n_physical in
  let ok = ref true in
  for _ = 1 to states do
    if !ok then begin
      let psi = Statevector.random ~state:rng n in
      (* physical input: |psi> placed at the initial homes, idle in |0> *)
      let embedded = Statevector.embed psi n_physical in
      let phys = Statevector.permute embedded (to_physical_perm home_in) in
      Statevector.apply_circuit phys physical;
      (* bring the output back to virtual order via the final homes *)
      let virt_out = Statevector.permute phys home_out in
      (* expected: run the logical circuit on the low n qubits directly *)
      let expected = Statevector.embed psi n_physical in
      Statevector.apply_circuit expected logical;
      if not (Statevector.approx_equal ~tol virt_out expected) then ok := false
    end
  done;
  !ok

let circuits_equivalent ?(states = 4) ?(seed = 42) ?(tol = 1e-8) a b =
  if Circuit.n_qubits a <> Circuit.n_qubits b then false
  else begin
    let a = drop_measurements a and b = drop_measurements b in
    let rng = Random.State.make [| seed |] in
    let ok = ref true in
    for _ = 1 to states do
      if !ok then begin
        let psi = Statevector.random ~state:rng (Circuit.n_qubits a) in
        let sa = Statevector.copy psi and sb = Statevector.copy psi in
        Statevector.apply_circuit sa a;
        Statevector.apply_circuit sb b;
        if not (Statevector.approx_equal ~tol sa sb) then ok := false
      end
    done;
    !ok
  end
