test/suite_qasm.ml: Alcotest Complex Filename Float List Quantum Sim Sys Workloads
