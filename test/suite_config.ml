module Config = Sabre.Config

let check = Alcotest.check
let tc = Alcotest.test_case
let valid c = match Config.validate c with Ok () -> true | Error _ -> false

let test_default_matches_paper () =
  let d = Config.default in
  check Alcotest.bool "validates" true (valid d);
  check Alcotest.int "|E| = 20" 20 d.extended_set_size;
  check (Alcotest.float 0.) "W = 0.5" 0.5 d.extended_set_weight;
  check (Alcotest.float 0.) "delta = 0.001" 0.001 d.decay_increment;
  check Alcotest.int "reset every 5" 5 d.decay_reset_interval;
  check Alcotest.int "5 trials" 5 d.trials;
  check Alcotest.int "3 traversals" 3 d.traversals;
  check Alcotest.bool "decay heuristic" true (d.heuristic = Config.Decay)

let test_validation_rejects () =
  let d = Config.default in
  check Alcotest.bool "negative E" false
    (valid { d with extended_set_size = -1 });
  check Alcotest.bool "weight 1.0" false
    (valid { d with extended_set_weight = 1.0 });
  check Alcotest.bool "negative weight" false
    (valid { d with extended_set_weight = -0.1 });
  check Alcotest.bool "negative delta" false
    (valid { d with decay_increment = -0.001 });
  check Alcotest.bool "zero reset" false
    (valid { d with decay_reset_interval = 0 });
  check Alcotest.bool "negative reset" false
    (valid { d with decay_reset_interval = -3 });
  check Alcotest.bool "NaN weight" false
    (valid { d with extended_set_weight = Float.nan });
  check Alcotest.bool "NaN delta" false
    (valid { d with decay_increment = Float.nan });
  check Alcotest.bool "zero trials" false (valid { d with trials = 0 });
  check Alcotest.bool "even traversals" false (valid { d with traversals = 2 });
  check Alcotest.bool "zero traversals" false (valid { d with traversals = 0 });
  check Alcotest.bool "bad stall limit" false
    (valid { d with stall_limit = Some 0 })

let test_validation_accepts_variants () =
  let d = Config.default in
  check Alcotest.bool "single traversal" true (valid { d with traversals = 1 });
  check Alcotest.bool "five traversals" true (valid { d with traversals = 5 });
  check Alcotest.bool "zero E with basic" true
    (valid { d with extended_set_size = 0; heuristic = Config.Basic });
  check Alcotest.bool "zero delta" true (valid { d with decay_increment = 0.0 })

let suite =
  [
    tc "default matches paper Section V" `Quick test_default_matches_paper;
    tc "validation rejects bad params" `Quick test_validation_rejects;
    tc "validation accepts variants" `Quick test_validation_accepts_variants;
  ]
