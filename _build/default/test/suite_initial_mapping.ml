module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Im = Sabre.Initial_mapping

let check = Alcotest.check
let tc = Alcotest.test_case

let assert_valid coupling circuit m label =
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  check Alcotest.int (label ^ " arity") n_logical (Mapping.n_logical m);
  let seen = Array.make n_physical false in
  for q = 0 to n_logical - 1 do
    let p = Mapping.to_physical m q in
    check Alcotest.bool (label ^ " in range") true (p >= 0 && p < n_physical);
    check Alcotest.bool (label ^ " injective") false seen.(p);
    seen.(p) <- true
  done

let test_trivial () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 6 in
  let m = Im.trivial device c in
  for q = 0 to 5 do
    check Alcotest.int "identity" q (Mapping.to_physical m q)
  done

let test_all_strategies_valid () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:77 ~n:10 ~gates:80 in
  let state = Random.State.make [| 1 |] in
  List.iter
    (fun (label, m) -> assert_valid device c m label)
    [
      ("trivial", Im.trivial device c);
      ("random", Im.random ~state device c);
      ("degree", Im.degree_matching device c);
      ("greedy", Im.interaction_greedy device c);
    ]

let test_degree_matching_puts_hub_on_hub () =
  (* star interaction graph onto a star device: the hub must land on the
     centre *)
  let device = Devices.star 6 in
  let c = Workloads.Ghz.star 6 in
  let m = Im.degree_matching device c in
  check Alcotest.int "hub on centre" 0 (Mapping.to_physical m 0)

let test_interaction_greedy_places_first_gate_adjacent () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Circuit.create ~n_qubits:4 [ Gate.Cnot (2, 3); Gate.Cnot (0, 1) ] in
  let m = Im.interaction_greedy device c in
  check Alcotest.bool "first pair adjacent" true
    (Coupling.connected device (Mapping.to_physical m 2)
       (Mapping.to_physical m 3))

let test_strategies_as_router_seeds () =
  (* every strategy must yield a correct routing through
     route_with_initial; quality ordering is workload-dependent, but a
     structured seed should do no worse than 3x the best *)
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Qft.circuit 10 in
  let results =
    List.map
      (fun (label, m) ->
        let r = Sabre.Compiler.route_with_initial device c m in
        Helpers.assert_compiler_result ~coupling:device ~logical:c r label;
        (label, r.stats.n_swaps))
      [
        ("trivial", Im.trivial device c);
        ("degree", Im.degree_matching device c);
        ("greedy", Im.interaction_greedy device c);
      ]
  in
  let swaps = List.map snd results in
  let best = List.fold_left min (List.hd swaps) swaps in
  List.iter
    (fun (label, s) ->
      check Alcotest.bool
        (Printf.sprintf "%s: %d within 3x best %d" label s best)
        true
        (s <= (3 * best) + 3))
    results

let suite =
  [
    tc "trivial" `Quick test_trivial;
    tc "all strategies valid" `Quick test_all_strategies_valid;
    tc "degree matching: hub on hub" `Quick test_degree_matching_puts_hub_on_hub;
    tc "greedy places first gate adjacent" `Quick
      test_interaction_greedy_places_first_gate_adjacent;
    tc "strategies as router seeds" `Quick test_strategies_as_router_seeds;
  ]
