module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

(** Batch compilation: many circuits, one device, a pool of domains.

    This is the service-shaped entry point: a request batch compiles
    against a shared device across the {!Scheduler} domain pool, the
    distance matrix is fetched once from {!Hardware.Dist_cache} and
    shared read-only by every domain, and each domain reuses its own
    routing scratch arena across the jobs it claims. Results come back
    in job order and are {e byte-identical} to compiling each circuit
    sequentially: every job runs its trial loop sequentially inside the
    job ([Trial_runner.Sequential]) with the seed from [config], so the
    only parallelism is across independent circuits.

    Per-job failures (routing failure, verification failure, invalid
    input) are captured as [Error] outcomes; one poisoned circuit never
    takes down the batch. *)

type job = { name : string; circuit : Circuit.t }

type success = {
  name : string;
  router : string;
      (** the router that produced this result — the portfolio winner's
          entry label ([Portfolio.entry_name]) in portfolio mode *)
  physical : Circuit.t;  (** hardware-compliant routed circuit *)
  initial : Mapping.t;  (** winning trial's initial mapping *)
  final : Mapping.t;
  stats : Stats.t;  (** [time_s] is this job's wall time *)
}

type error = { name : string; message : string }
type outcome = (success, error) result

type report = {
  outcomes : outcome array;  (** in job order *)
  wall_s : float;  (** whole-batch wall time *)
  domains : int;  (** domains actually used (after clamping) *)
  domain_stats : Scheduler.domain_stats array;
      (** per-worker jobs-claimed counters from the scheduler *)
}

val compile_many :
  ?config:Config.t ->
  ?router:Router.t ->
  ?portfolio:Portfolio.entry list * Portfolio.objective ->
  ?domains:int ->
  ?verify:bool ->
  ?race:bool ->
  ?cache:bool ->
  ?dedup:bool ->
  ?instrument:Instrument.t ->
  Coupling.t ->
  job array ->
  report
(** [compile_many coupling jobs] routes every job's circuit for
    [coupling] through the default pipeline. [router] defaults to
    SABRE; [portfolio], when given, overrides [router]: each job runs
    {!Portfolio.run} over the entries (sequentially inside the job —
    parallelism stays across jobs, keeping results byte-identical to
    sequential) and keeps the winner. [domains] defaults to 1
    (sequential — pass [Trial_runner.default_domains ()] to use every
    core); [verify] (default [false]) appends the semantic
    {!Verify_pass} to each job's pipeline. [race] (default [false])
    arms {!Portfolio.run}'s incumbent-bound pruning inside each
    portfolio job — the per-job winner is unchanged, losing entries
    just stop early (no effect without [portfolio]).

    [cache] (default [false]) opts every job into the content-addressed
    {!Compile_cache}: results previously routed for the same
    [(circuit, device, config, router/entry, scoring)] key — in this
    batch, an earlier batch, or any other entry point — come back as
    O(1) hits, byte-identical to a fresh route. [dedup] (default
    [true]) collapses manifest rows with byte-identical circuits before
    scheduling: the representative routes once and every duplicate
    receives the same outcome (success or error) under its own name, in
    the original order — [domain_stats] then counts scheduled unique
    jobs, not manifest rows. Both are pure perf knobs: reported
    outcomes are byte-identical either way.

    [instrument] receives every
    job's pass events and must be domain-safe when [domains > 1]
    ({!Instrument.null}, the default, {!Instrument.stderr_trace} and
    {!Instrument.sync_collector} are; a plain {!Instrument.collector}
    is not). *)
