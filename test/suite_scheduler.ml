(* Scheduler (domain pool over a shared atomic queue) and the
   Trial_runner winner reduction.

   The determinism contract under test: whatever the claim interleaving,
   results come back in input order, every thunk runs exactly once, the
   lowest-indexed failure is the one re-raised, and [Trial_runner.best]
   keeps the first of equally good candidates — together these make a
   multi-domain run observationally identical to a sequential loop. *)

module Scheduler = Engine.Scheduler
module Trial_runner = Engine.Trial_runner

let check = Alcotest.check
let tc = Alcotest.test_case

let squares n = Array.init n (fun i -> (fun () -> i * i))
let expected_squares n = Array.init n (fun i -> i * i)

let test_results_in_order () =
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          check
            (Alcotest.array Alcotest.int)
            (Printf.sprintf "%d jobs / %d domains" n domains)
            (expected_squares n)
            (Scheduler.run ~domains (squares n)))
        [ 0; 1; 2; 7; 37; 100 ])
    [ 1; 2; 3; 8 ]

let test_chunk_override () =
  List.iter
    (fun chunk ->
      check
        (Alcotest.array Alcotest.int)
        (Printf.sprintf "chunk=%d" chunk)
        (expected_squares 41)
        (Scheduler.run ~chunk ~domains:3 (squares 41)))
    [ -5; 1; 2; 5; 100 ]

let test_each_thunk_runs_once () =
  let n = 64 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  let jobs =
    Array.init n (fun i ->
        fun () ->
          Atomic.incr counts.(i);
          i)
  in
  ignore (Scheduler.run ~chunk:3 ~domains:4 jobs);
  Array.iteri
    (fun i c ->
      check Alcotest.int (Printf.sprintf "thunk %d runs once" i) 1
        (Atomic.get c))
    counts

let test_default_chunk () =
  check Alcotest.int "100 jobs / 4 domains" 3
    (Scheduler.default_chunk ~n_jobs:100 ~domains:4);
  check Alcotest.int "small job count floors at 1" 1
    (Scheduler.default_chunk ~n_jobs:5 ~domains:8);
  check Alcotest.int "degenerate domains" 1
    (Scheduler.default_chunk ~n_jobs:4 ~domains:0)

let test_lowest_indexed_failure_wins () =
  let jobs =
    Array.init 32 (fun i ->
        fun () ->
          if i = 5 || i = 20 then failwith (Printf.sprintf "boom%d" i) else i)
  in
  List.iter
    (fun domains ->
      match Scheduler.run ~chunk:1 ~domains jobs with
      | _ -> Alcotest.failf "%d domains: expected a failure" domains
      | exception Failure msg ->
        check Alcotest.string
          (Printf.sprintf "%d domains re-raise the index-5 failure" domains)
          "boom5" msg)
    [ 1; 2; 4 ]

let test_report_accounting () =
  let n = 50 in
  let { Scheduler.results; stats } =
    Scheduler.run_report ~chunk:2 ~domains:4 (squares n)
  in
  check (Alcotest.array Alcotest.int) "results" (expected_squares n) results;
  check Alcotest.int "one stats entry per worker" 4 (Array.length stats);
  Array.iteri
    (fun i s ->
      check Alcotest.int (Printf.sprintf "worker %d index" i) i
        s.Scheduler.domain)
    stats;
  check Alcotest.int "jobs_run sums to the job count" n
    (Array.fold_left (fun acc s -> acc + s.Scheduler.jobs_run) 0 stats);
  check Alcotest.int "single-domain report has one entry" 1
    (Array.length (Scheduler.run_report ~domains:1 (squares 5)).stats)

let test_domains_clamped_to_jobs () =
  (* more domains than jobs must not spawn idle workers that break the
     per-worker accounting *)
  let { Scheduler.results; stats } =
    Scheduler.run_report ~domains:16 (squares 3)
  in
  check (Alcotest.array Alcotest.int) "results" (expected_squares 3) results;
  check Alcotest.bool "worker count clamped" true (Array.length stats <= 3)

(* ------------------------------------------------------------------ *)
(* Trial_runner                                                        *)
(* ------------------------------------------------------------------ *)

let test_map_modes_agree () =
  let jobs = Array.init 23 (fun i -> (fun () -> 3 * i)) in
  let seq = Trial_runner.map ~mode:Trial_runner.Sequential jobs in
  List.iter
    (fun d ->
      check
        (Alcotest.array Alcotest.int)
        (Printf.sprintf "Domains %d = Sequential" d)
        seq
        (Trial_runner.map ~mode:(Trial_runner.Domains d) jobs))
    [ 1; 2; 4 ]

let test_best_first_wins_on_tie () =
  (* candidates carry a tag the comparison cannot see; equal scores must
     keep the earliest candidate, the paper-faithful sequential
     reduction that makes parallel trial runs reproducible *)
  let better (a, _) (b, _) = a < b in
  let score, tag =
    Trial_runner.best ~better
      [| (5, "a"); (3, "first-best"); (3, "later-tie"); (7, "d"); (3, "e") |]
  in
  check Alcotest.int "winning score" 3 score;
  check Alcotest.string "first best wins" "first-best" tag;
  let _, tag = Trial_runner.best ~better [| (1, "only") |] in
  check Alcotest.string "singleton" "only" tag;
  check Alcotest.bool "empty array rejected" true
    (match Trial_runner.best ~better [||] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_default_domains_positive () =
  check Alcotest.bool "default_domains >= 1" true
    (Trial_runner.default_domains () >= 1)

let suite =
  [
    tc "results in input order" `Quick test_results_in_order;
    tc "chunk override" `Quick test_chunk_override;
    tc "each thunk runs exactly once" `Quick test_each_thunk_runs_once;
    tc "default chunk sizing" `Quick test_default_chunk;
    tc "lowest-indexed failure re-raised" `Quick
      test_lowest_indexed_failure_wins;
    tc "per-domain accounting" `Quick test_report_accounting;
    tc "domains clamped to job count" `Quick test_domains_clamped_to_jobs;
    tc "trial map modes agree" `Quick test_map_modes_agree;
    tc "best: first best wins on ties" `Quick test_best_first_wins_on_tie;
    tc "default_domains positive" `Quick test_default_domains_positive;
  ]
