(** Logical→physical qubit mapping π (paper Table I).

    A mapping places [n] logical qubits injectively onto [n_physical ≥ n]
    physical qubits. Both directions are kept: π (logical→physical) and
    π⁻¹ (physical→logical, −1 on free physical qubits). Values are
    immutable from the outside; the update operations return new
    mappings, while the routing pass uses the [_inplace] variants on its
    private copy for speed. *)

type t

val identity : n_logical:int -> n_physical:int -> t
(** Logical qubit [q] on physical qubit [q]. *)

val of_array : n_physical:int -> int array -> t
(** [of_array ~n_physical l2p] validates injectivity and range. The array
    is copied. *)

val random : state:Random.State.t -> n_logical:int -> n_physical:int -> t
(** Uniformly random injective placement (Fisher–Yates over the physical
    qubits), used as the temporary initial mapping of Section IV-A. *)

val n_logical : t -> int
val n_physical : t -> int

val to_physical : t -> int -> int
(** π: physical home of a logical qubit. *)

val to_logical : t -> int -> int
(** π⁻¹: logical occupant of a physical qubit, or −1 if free. *)

val l2p_array : t -> int array
(** Copy of the logical→physical array. *)

val copy : t -> t

val swap_physical : t -> int -> int -> t
(** [swap_physical m p1 p2] exchanges the occupants of two physical
    qubits (either may be free) — the mapping update caused by a SWAP
    gate on [(p1, p2)]. *)

val swap_physical_inplace : t -> int -> int -> unit
(** In-place variant for the routing inner loop. *)

val equal : t -> t -> bool

val compose_permutation : t -> t -> int array
(** [compose_permutation before after] gives, for each logical qubit, the
    physical-to-physical displacement: the array [d] with
    [d.(to_physical before q) = to_physical after q]. Useful to express a
    routed circuit's net effect as a permutation. *)

val pp : Format.formatter -> t -> unit
