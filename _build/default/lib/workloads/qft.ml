module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Decompose = Quantum.Decompose

let build n ~keep =
  if n < 1 then invalid_arg "Qft.circuit: need at least one qubit";
  let gates = ref [] in
  let add g = gates := g :: !gates in
  for i = 0 to n - 1 do
    add (Gate.Single (H, i));
    for j = i + 1 to n - 1 do
      if keep (j - i) then begin
        let theta = Float.pi /. Float.pow 2.0 (float_of_int (j - i)) in
        List.iter add (Decompose.cphase theta j i)
      end
    done
  done;
  Circuit.create ~n_qubits:n (List.rev !gates)

let circuit n = build n ~keep:(fun _ -> true)

let approximate n ~degree =
  if degree < 1 then invalid_arg "Qft.approximate: degree must be >= 1";
  build n ~keep:(fun d -> d < degree)
