module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Depth = Quantum.Depth

let check = Alcotest.check
let tc = Alcotest.test_case

let test_empty () = check Alcotest.int "empty" 0 (Depth.depth (Circuit.empty 3))

let test_parallel_gates_share_level () =
  let c =
    Circuit.create ~n_qubits:4 [ Gate.Cnot (0, 1); Gate.Cnot (2, 3) ]
  in
  check Alcotest.int "depth 1" 1 (Depth.depth c)

let test_serial_gates_stack () =
  let c =
    Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 1); Gate.Cnot (1, 2) ]
  in
  check Alcotest.int "depth 2" 2 (Depth.depth c)

let test_paper_example_fig3 () =
  (* Fig. 3(c): 6 CNOTs on 4 qubits, depth 5 *)
  let original =
    Circuit.create ~n_qubits:4
      [
        Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
        Gate.Cnot (1, 2); Gate.Cnot (2, 3); Gate.Cnot (0, 3);
      ]
  in
  check Alcotest.int "original depth" 5 (Depth.depth original);
  (* Fig. 3(d): SWAP inserted after the third CNOT; depth 8 when the
     SWAP is charged its 3-CNOT expansion *)
  let updated =
    Circuit.create ~n_qubits:4
      [
        Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
        Gate.Swap (0, 1);
        Gate.Cnot (1, 2); Gate.Cnot (2, 3); Gate.Cnot (0, 3);
      ]
  in
  check Alcotest.int "updated gates" 9
    (Quantum.Decompose.elementary_gate_count updated);
  check Alcotest.int "updated depth" 8 (Depth.depth_swap3 updated)

let test_barrier_forces_level () =
  let free =
    Circuit.create ~n_qubits:2 [ Gate.Single (H, 0); Gate.Single (H, 1) ]
  in
  check Alcotest.int "parallel" 1 (Depth.depth free);
  let fenced =
    Circuit.create ~n_qubits:2
      [ Gate.Single (H, 0); Gate.Barrier [ 0; 1 ]; Gate.Single (H, 1) ]
  in
  (* barrier takes no time but serialises across it *)
  check Alcotest.int "serialised" 2 (Depth.depth fenced)

let test_two_qubit_depth () =
  let c =
    Circuit.create ~n_qubits:2
      [ Gate.Single (H, 0); Gate.Cnot (0, 1); Gate.Single (T, 1); Gate.Cnot (0, 1) ]
  in
  check Alcotest.int "cnot layers" 2 (Depth.two_qubit_depth c);
  check Alcotest.int "full depth" 4 (Depth.depth c)

let test_levels_monotone () =
  let c = Workloads.Qft.circuit 5 in
  let { Depth.levels; depth } = Depth.asap c in
  Array.iter (fun l -> check Alcotest.bool "level in range" true (l >= 0 && l < depth)) levels

let test_parallelism () =
  let c =
    Circuit.create ~n_qubits:4 [ Gate.Cnot (0, 1); Gate.Cnot (2, 3) ]
  in
  check (Alcotest.float 1e-9) "2 gates / 1 level" 2.0 (Depth.parallelism c);
  check (Alcotest.float 1e-9) "empty" 0.0 (Depth.parallelism (Circuit.empty 2))

let test_layers () =
  let c =
    Circuit.create ~n_qubits:3
      [ Gate.Single (H, 0); Gate.Single (H, 1); Gate.Cnot (0, 1); Gate.Single (T, 2) ]
  in
  let layers = Depth.layers c in
  check Alcotest.int "two layers" 2 (List.length layers);
  check Alcotest.int "first layer size" 3 (List.length (List.nth layers 0));
  check Alcotest.int "second layer size" 1 (List.length (List.nth layers 1))

let test_layers_cover_all_gates () =
  let c = Workloads.Ising.circuit ~steps:3 6 in
  let total = List.fold_left (fun acc l -> acc + List.length l) 0 (Depth.layers c) in
  check Alcotest.int "all gates in layers" (Circuit.length c) total

let suite =
  [
    tc "empty" `Quick test_empty;
    tc "parallel gates share level" `Quick test_parallel_gates_share_level;
    tc "serial gates stack" `Quick test_serial_gates_stack;
    tc "paper Fig. 3 depths" `Quick test_paper_example_fig3;
    tc "barrier forces level" `Quick test_barrier_forces_level;
    tc "two-qubit depth" `Quick test_two_qubit_depth;
    tc "levels monotone" `Quick test_levels_monotone;
    tc "parallelism" `Quick test_parallelism;
    tc "layers" `Quick test_layers;
    tc "layers cover all gates" `Quick test_layers_cover_all_gates;
  ]
