lib/workloads/suite.mli: Lazy Quantum
