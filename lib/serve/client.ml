type t = {
  fd : Unix.file_descr;
  reader : Netline.reader;
  mutable closed : bool;
}

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      invalid_arg (Printf.sprintf "host %S resolves to no address" host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found ->
      invalid_arg (Printf.sprintf "unknown host %S" host))

let sockaddr_of = function
  | Protocol.Unix_sock path -> Unix.ADDR_UNIX path
  | Protocol.Tcp { host; port } -> Unix.ADDR_INET (resolve_host host, port)

let connect ?(retry_for_s = 0.0) endpoint =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = sockaddr_of endpoint in
  let deadline = Unix.gettimeofday () +. retry_for_s in
  let rec go () =
    let fd =
      Unix.socket ~cloexec:true
        (Unix.domain_of_sockaddr addr)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd addr with
    | () -> { fd; reader = Netline.reader fd; closed = false }
    | exception Unix.Unix_error (((Unix.ENOENT | Unix.ECONNREFUSED) as e), f, a)
      ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        ignore (Unix.select [] [] [] 0.02);
        go ()
      end
      else raise (Unix.Unix_error (e, f, a))
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go ()

let request t req =
  if t.closed then Error "connection closed"
  else if not (Netline.write_line t.fd (Protocol.encode_request req)) then
    Error "connection lost while sending"
  else
    match Netline.read_line t.reader with
    | Netline.Line line -> Protocol.decode_response line
    | Netline.Overflow -> Error "oversized response line"
    | Netline.Eof -> Error "server closed the connection"

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connection ?retry_for_s endpoint f =
  let c = connect ?retry_for_s endpoint in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
