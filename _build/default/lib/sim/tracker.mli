module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

(** Scalable semantic verification of routed circuits.

    A routing pass (SABRE or a baseline) turns a logical circuit into a
    physical circuit made of the original gates — remapped to physical
    indices — interleaved with inserted SWAPs. This module replays the
    physical circuit while tracking the physical→logical permutation and
    checks, without any exponential simulation:

    - {b compliance}: every two-qubit gate acts on a coupling-graph edge;
    - {b semantics}: stripping the inserted SWAPs and un-mapping the
      remaining gates recovers a circuit equal to the original up to
      reordering of independent gates (see {!Circuit.canonical_key}).

    Inserted SWAPs are identified structurally: any [Swap] gate in the
    physical circuit is treated as routing (the workloads in this
    repository never contain logical SWAPs; decompose them first if yours
    do). *)

type error =
  | Not_on_edge of Gate.t  (** a two-qubit gate off the coupling graph *)
  | Unmapped_qubit of Gate.t * int
      (** a non-SWAP gate touches a physical qubit holding no logical
          qubit *)
  | Semantics_mismatch  (** un-mapped circuit differs from the original *)
  | Final_mapping_mismatch of int
      (** the reported final mapping disagrees with the tracked one for
          the given logical qubit *)

val pp_error : Format.formatter -> error -> unit

val unroute :
  initial:int array -> n_logical:int -> Circuit.t -> (Circuit.t * int array, error) result
(** [unroute ~initial ~n_logical physical] replays [physical] with the
    given initial logical→physical mapping ([initial.(q)] is the physical
    home of logical qubit [q]); returns the recovered logical circuit and
    the final logical→physical mapping. *)

val check :
  coupling:Coupling.t ->
  initial:int array ->
  ?final:int array ->
  logical:Circuit.t ->
  physical:Circuit.t ->
  unit ->
  (unit, error) result
(** Full check: compliance of every two-qubit gate of [physical] against
    [coupling], semantic equality of the un-routed circuit with
    [logical], and (when [final] is given) agreement of the reported
    final mapping with the tracked one. *)

val check_compliance : coupling:Coupling.t -> Circuit.t -> (unit, error) result
(** Only the hardware-compliance part of {!check}. *)
