module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

let single_pool = [| Gate.H; Gate.X; Gate.T; Gate.Tdg; Gate.S; Gate.Z |]

let circuit ?(seed = 1) ?(two_qubit_ratio = 0.7) ?(hot_fraction = 0.3)
    ?(hot_bias = 0.6) ~n ~gates () =
  if n < 2 then invalid_arg "Random_reversible.circuit: need >= 2 qubits";
  if gates < 0 then invalid_arg "Random_reversible.circuit: negative size";
  let rng = Random.State.make [| seed; n; gates |] in
  let n_hot = max 1 (int_of_float (Float.round (hot_fraction *. float_of_int n))) in
  let pick_qubit () =
    if Random.State.float rng 1.0 < hot_bias then Random.State.int rng n_hot
    else Random.State.int rng n
  in
  let pick_pair () =
    let a = pick_qubit () in
    let other () =
      let b = pick_qubit () in
      if b = a then
        (* fall back to uniform to avoid a long loop when n_hot = 1 *)
        let b = Random.State.int rng n in
        if b = a then (a + 1) mod n else b
      else b
    in
    (a, other ())
  in
  let gate_list =
    List.init gates (fun _ ->
        if Random.State.float rng 1.0 < two_qubit_ratio then begin
          let a, b = pick_pair () in
          Gate.Cnot (a, b)
        end
        else begin
          let k = single_pool.(Random.State.int rng (Array.length single_pool)) in
          Gate.Single (k, Random.State.int rng n)
        end)
  in
  Circuit.create ~n_qubits:n gate_list

let toffoli_network ?(seed = 1) ?(hot_fraction = 0.4) ?(hot_bias = 0.5) ~n
    ~gates () =
  if n < 3 then invalid_arg "Random_reversible.toffoli_network: need >= 3 qubits";
  if gates < 0 then invalid_arg "Random_reversible.toffoli_network: negative size";
  let rng = Random.State.make [| seed; n; gates; 0x70ff |] in
  let n_hot =
    max 1 (int_of_float (Float.round (hot_fraction *. float_of_int n)))
  in
  let pick_qubit () =
    if Random.State.float rng 1.0 < hot_bias then Random.State.int rng n_hot
    else Random.State.int rng n
  in
  let rec pick_distinct k acc =
    if k = 0 then acc
    else begin
      let q = pick_qubit () in
      if List.mem q acc then
        (* uniform fallback avoids spinning when the hot set is tiny *)
        let q = Random.State.int rng n in
        if List.mem q acc then pick_distinct k acc
        else pick_distinct (k - 1) (q :: acc)
      else pick_distinct (k - 1) (q :: acc)
    end
  in
  let block () =
    let r = Random.State.float rng 1.0 in
    if r < 0.6 then
      match pick_distinct 3 [] with
      | [ a; b; c ] -> Quantum.Decompose.toffoli a b c
      | _ -> assert false
    else if r < 0.9 then
      match pick_distinct 2 [] with
      | [ a; b ] -> [ Gate.Cnot (a, b) ]
      | _ -> assert false
    else
      let k = single_pool.(Random.State.int rng (Array.length single_pool)) in
      [ Gate.Single (k, Random.State.int rng n) ]
  in
  let rec fill acc count =
    if count >= gates then acc
    else begin
      let b = block () in
      fill (List.rev_append b acc) (count + List.length b)
    end
  in
  let gate_list = List.rev (fill [] 0) in
  let truncated = List.filteri (fun i _ -> i < gates) gate_list in
  Circuit.create ~n_qubits:n truncated

(* Stable 32-bit FNV-1a so the same name always yields the same seed,
   independent of OCaml's randomised Hashtbl.hash. *)
let string_seed s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let of_name ~name ~n ~gates =
  toffoli_network ~seed:(string_seed name) ~n ~gates ()
