module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

(** The routed-circuit conformance contract, as one reusable check.

    Sections IV-B/IV-C of the paper define what a correct routing output
    looks like; this module bundles every facet into a single function so
    tests, the verify pass's siblings, and the fuzz campaign all enforce
    the same contract:

    - {b compliance}: every two-qubit gate of the physical circuit acts
      on a coupling-graph edge;
    - {b semantics}: un-mapping the physical circuit through the initial
      mapping recovers the logical circuit (strict per-qubit sequences,
      or any linearisation of the commuting DAG when [commuting]);
    - {b accounting}: elementary gate count of the output equals that of
      the input plus 3 per inserted SWAP;
    - {b depth sanity}: SWAP-weighted depth of the output lies in
      [depth(logical), (swaps+1)·depth(logical) + 3·swaps] — a SWAP can
      chain previously independent gates, so each of the at-most
      [swaps+1] original-gate runs on a critical path is bounded by the
      logical depth (skipped when [commuting] — reordering commuting
      gates may legally beat the strict-DAG depth);
    - {b equivalence}: on devices small enough for dense simulation
      (≤ [dense_max_qubits]), the routed circuit is unitarily equivalent
      to the source through the initial/final mappings
      ({!Sim.Equivalence}); larger devices rely on the permutation
      tracker ({!Sim.Tracker}), which is exact and scalable.

    The logical circuit must be SWAP-free (the generators guarantee
    this): inserted SWAPs are identified structurally. *)

type failure =
  | Tracker of string
      (** compliance / semantics / final-mapping failure from
          {!Sim.Tracker} *)
  | Accounting of { expected : int; actual : int }
      (** elementary gate count ≠ input + 3·swaps *)
  | Depth_out_of_bounds of { logical : int; routed : int; n_swaps : int }
  | Not_equivalent  (** dense simulation disagrees *)
  | Not_commuting_linearisation
      (** commuting mode: the un-routed circuit is not a linearisation of
          the commuting dependency DAG *)
  | Crash of string  (** the router raised an unexpected exception *)

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

val check :
  ?dense_max_qubits:int ->
  ?states:int ->
  ?commuting:bool ->
  coupling:Coupling.t ->
  logical:Circuit.t ->
  initial:int array ->
  final:int array ->
  physical:Circuit.t ->
  unit ->
  (unit, failure) result
(** Full contract. [dense_max_qubits] (default 12) bounds the device size
    for the dense-simulation leg; [states] (default 2) is the number of
    random states it tests; [commuting] (default false) relaxes semantics
    to commuting-DAG linearisations, as commutation-aware routing is
    allowed to reorder commuting gates. *)
