lib/workloads/grover.ml: Complex Float List Quantum Sim
