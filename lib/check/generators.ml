module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config

let gate ~n_qubits:n =
  let open QCheck.Gen in
  let qubit = int_range 0 (n - 1) in
  let distinct_pair =
    qubit >>= fun a ->
    int_range 0 (n - 2) >>= fun k ->
    let b = if k >= a then k + 1 else k in
    return (a, b)
  in
  frequency
    [
      (4, distinct_pair >|= fun (a, b) -> Gate.Cnot (a, b));
      (1, distinct_pair >|= fun (a, b) -> Gate.Cz (a, b));
      (1, distinct_pair >|= fun (a, b) -> Gate.Swap (a, b));
      (1, qubit >|= fun q -> Gate.Single (H, q));
      (1, qubit >|= fun q -> Gate.Single (T, q));
      ( 1,
        qubit >>= fun q ->
        float_range (-3.0) 3.0 >|= fun a -> Gate.Single (Rz a, q) );
    ]

let circuit ?(min_qubits = 2) ?(max_qubits = 6) ?(max_gates = 40) () =
  let open QCheck.Gen in
  int_range min_qubits max_qubits >>= fun n ->
  list_size (int_range 0 max_gates) (gate ~n_qubits:n) >|= fun gates ->
  Quantum.Decompose.expand_swaps (Circuit.create ~n_qubits:n gates)

let rebuild like gates =
  Circuit.create ~n_qubits:(Circuit.n_qubits like)
    ~n_clbits:(Circuit.n_clbits like) gates

let shrink_circuit c yield =
  QCheck.Shrink.list_spine (Circuit.gates c) (fun gates ->
      yield (rebuild c gates))

let circuit_arb ?min_qubits ?max_qubits ?max_gates () =
  QCheck.make
    (circuit ?min_qubits ?max_qubits ?max_gates ())
    ~print:Circuit.to_string ~shrink:shrink_circuit

(* ------------------------------------------------------------------ *)
(* Coupling graphs                                                     *)
(* ------------------------------------------------------------------ *)

let tree_plus_gen n =
  let open QCheck.Gen in
  if n = 1 then return (Coupling.create ~n_qubits:1 [])
  else
    (* spanning tree: each node i>0 attaches to a random previous node *)
    let attach i = int_range 0 (i - 1) >|= fun p -> (p, i) in
    let rec tree i acc =
      if i >= n then return acc
      else attach i >>= fun e -> tree (i + 1) (e :: acc)
    in
    tree 1 [] >>= fun tree_edges ->
    list_size (int_range 0 n)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >|= fun extras ->
    let have = Hashtbl.create 16 in
    List.iter
      (fun (a, b) -> Hashtbl.replace have (min a b, max a b) ())
      tree_edges;
    let extra_edges =
      List.filter_map
        (fun (a, b) ->
          if a = b then None
          else begin
            let e = (min a b, max a b) in
            if Hashtbl.mem have e then None
            else begin
              Hashtbl.replace have e ();
              Some e
            end
          end)
        extras
    in
    Coupling.create ~n_qubits:n (tree_edges @ extra_edges)

let path n =
  Coupling.create ~n_qubits:n (List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  let wrap = if n >= 3 then [ (0, n - 1) ] else [] in
  Coupling.create ~n_qubits:n
    (List.init (n - 1) (fun i -> (i, i + 1)) @ wrap)

let grid_at_least n =
  let rows = max 1 (int_of_float (sqrt (float_of_int n))) in
  let cols = (n + rows - 1) / rows in
  Hardware.Devices.grid ~rows ~cols

let coupling ?(min_qubits = 2) ?(slack = 4) () =
  let open QCheck.Gen in
  int_range (max 2 min_qubits) (max 2 min_qubits + slack) >>= fun n ->
  frequency
    [
      (1, return (path n));
      (1, return (ring n));
      (1, return (grid_at_least n));
      (3, tree_plus_gen n);
    ]

(* ------------------------------------------------------------------ *)
(* Configurations                                                      *)
(* ------------------------------------------------------------------ *)

let config =
  let open QCheck.Gen in
  oneofl [ Config.Basic; Config.Lookahead; Config.Decay ] >>= fun heuristic ->
  int_range 1 2 >>= fun trials ->
  oneofl [ 1; 3 ] >>= fun traversals ->
  int_range 0 8 >>= fun extended_set_size ->
  float_range 0.0 0.9 >>= fun extended_set_weight ->
  float_range 0.0 0.01 >>= fun decay_increment ->
  int_range 1 5 >>= fun decay_reset_interval ->
  int_range 0 1_000_000 >|= fun seed ->
  {
    Config.default with
    heuristic;
    trials;
    traversals;
    extended_set_size;
    extended_set_weight;
    decay_increment;
    decay_reset_interval;
    seed;
  }

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)
(* ------------------------------------------------------------------ *)

type instance = {
  circuit : Circuit.t;
  coupling : Coupling.t;
  config : Config.t;
}

let instance ?max_qubits ?max_gates () =
  let open QCheck.Gen in
  circuit ?max_qubits ?max_gates () >>= fun c ->
  coupling ~min_qubits:(Circuit.n_qubits c) () >>= fun coupling ->
  config >|= fun config -> { circuit = c; coupling; config }

let print_instance i =
  Format.asprintf "config=%a@.%a@.%a" Config.pp i.config Coupling.pp i.coupling
    Circuit.pp i.circuit

let shrink_instance i yield =
  shrink_circuit i.circuit (fun c -> yield { i with circuit = c })

let instance_arb ?max_qubits ?max_gates () =
  QCheck.make
    (instance ?max_qubits ?max_gates ())
    ~print:print_instance ~shrink:shrink_instance

let instance_of_seed ?max_qubits ?max_gates seed =
  QCheck.Gen.generate1
    ~rand:(Random.State.make [| 0x5eed; seed |])
    (instance ?max_qubits ?max_gates ())
