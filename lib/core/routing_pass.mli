module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling

(** One traversal of SABRE's SWAP-based heuristic search (paper
    Algorithm 1).

    The pass consumes a circuit DAG and an initial mapping and produces
    the physical circuit: original gates remapped through the evolving π,
    interleaved with inserted SWAP gates on coupling-graph edges. The
    bidirectional driver {!Compiler} calls this once per traversal. *)

type result = {
  physical : Circuit.t;  (** hardware-compliant output circuit *)
  final_mapping : Mapping.t;  (** π after the last gate *)
  n_swaps : int;  (** SWAPs inserted (each costs 3 CNOTs) *)
  search_steps : int;  (** heuristic SWAP selections performed *)
  fallback_swaps : int;
      (** SWAPs inserted by the anti-livelock shortest-path fallback; 0
          in normal operation *)
}

val run :
  ?dist:float array array ->
  Config.t -> Coupling.t -> Dag.t -> Mapping.t -> result
(** [run config coupling dag initial] routes the DAG's circuit. [dist]
    overrides the hop-count distance matrix with a custom routing metric
    (e.g. {!Hardware.Noise.swap_reliability_distance} for fidelity-aware
    mapping); it must be non-negative, symmetric, zero on the diagonal
    and finite between connected qubits. The
    initial mapping is not mutated. Raises [Invalid_argument] when the
    circuit needs more logical qubits than the device has physical ones,
    or when the coupling graph is disconnected while the circuit requires
    interaction across components.

    Convenience wrapper over {!run_flat}: flattens [dist] row-major per
    call. Drivers that route many traversals (trials × directions)
    should flatten once and call {!run_flat}. *)

val run_flat :
  ?dist:float array -> Config.t -> Coupling.t -> Dag.t -> Mapping.t -> result
(** Same as {!run}, but the metric is the row-major flattened matrix
    ([dist.((p1 * n_physical) + p2)], stride = device qubit count) the
    search scores against directly — no per-compilation conversion, one
    shared array across trials and traversal directions. Raises
    [Invalid_argument] if [dist] is not exactly [n_physical²] long.

    Allocates a fresh {!Scratch.t} per call; drivers routing many
    traversals against one device should hold a scratch and call
    {!run_with_scratch}. *)

(** Reusable search-state arena: every array the traversal loop touches
    (front deque, candidate stamps, BFS ring buffer, decay, front-pair
    and extended-set caches), allocated once per device and reset per
    run, so the steady-state hot path of a driver that routes many
    circuits is allocation-free. A scratch belongs to one domain at a
    time — never share one across concurrent runs. *)
module Scratch : sig
  type t

  val create : Coupling.t -> t
  (** Size the arena for [coupling] (decay per physical qubit, candidate
      stamps per edge); DAG-sized arrays start empty and grow to the
      largest circuit routed with this scratch. *)
end

val run_with_scratch :
  scratch:Scratch.t ->
  ?dist:float array ->
  Config.t ->
  Coupling.t ->
  Dag.t ->
  Mapping.t ->
  result
(** {!run_flat}, reusing [scratch] instead of allocating. The output is
    bit-identical to a fresh-scratch run: per-run state is reset on
    entry, and the stamp arrays survive untouched because their
    generation counters only ever increase (a π-independent stale stamp
    can never collide with a fresh generation). Raises
    [Invalid_argument] when [scratch] was created for a device of a
    different shape (qubit or edge count). *)
