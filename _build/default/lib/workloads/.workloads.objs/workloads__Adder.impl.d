lib/workloads/adder.ml: List Quantum
