lib/workloads/ghz.ml: List Quantum
