let () =
  Alcotest.run "sabre_repro"
    [
      ("gate", Suite_gate.suite);
      ("circuit", Suite_circuit.suite);
      ("dag", Suite_dag.suite);
      ("commutation", Suite_commutation.suite);
      ("depth", Suite_depth.suite);
      ("render", Suite_render.suite);
      ("decompose", Suite_decompose.suite);
      ("qasm", Suite_qasm.suite);
      ("optimize", Suite_optimize.suite);
      ("coupling", Suite_coupling.suite);
      ("devices", Suite_devices.suite);
      ("noise", Suite_noise.suite);
      ("directed", Suite_directed.suite);
      ("statevector", Suite_statevector.suite);
      ("tracker", Suite_tracker.suite);
      ("equivalence", Suite_equivalence.suite);
      ("mapping", Suite_mapping.suite);
      ("initial_mapping", Suite_initial_mapping.suite);
      ("config", Suite_config.suite);
      ("heuristic", Suite_heuristic.suite);
      ("routing", Suite_routing.suite);
      ("compiler", Suite_compiler.suite);
      ("engine", Suite_engine.suite);
      ("scheduler", Suite_scheduler.suite);
      ("dist_cache", Suite_dist_cache.suite);
      ("batch", Suite_batch.suite);
      ("flatcore", Suite_flatcore.suite);
      ("baseline", Suite_baseline.suite);
      ("optimal", Suite_optimal.suite);
      ("workloads", Suite_workloads.suite);
      ("integration", Suite_integration.suite);
      ("assets", Suite_assets.suite);
      ("properties", Suite_properties.suite);
      ("check", Suite_check.suite);
    ]
