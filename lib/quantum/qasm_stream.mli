(** Incremental OpenQASM 2.0 frontend.

    The streaming counterpart to {!Qasm}: the lexer pulls characters
    from a channel (or any refill callback) one chunk at a time, and the
    parser exposes a pull-based event API instead of materialising a
    {!Circuit.t}. Memory use is bounded by one input chunk plus the
    symbol tables (registers and user gate definitions) — it never
    depends on the number of gates in the program.

    The grammar accepted is exactly the subset documented in {!Qasm};
    indeed {!Qasm.of_string}/{!Qasm.of_file} are implemented by draining
    this stream. User-defined gates are expanded inline at the point of
    application (macro semantics), so [Gate] events always carry gates
    over the flattened physical index space. *)

exception Parse_error of { line : int; column : int; message : string }
(** Raised on malformed input. [line] and [column] are 1-based and
    locate the offending token (for lexical errors, the offending
    character). *)

type t
(** A parser over a partially-consumed input stream. *)

val of_channel : in_channel -> t
(** Lex from a channel chunk-by-chunk. The channel is not closed by this
    module; the caller owns it and must keep it open while pulling
    events. *)

val of_string : string -> t
(** Lex from an in-memory string (used by the eager {!Qasm} API and by
    tests). *)

val of_refill : (bytes -> int) -> t
(** Lex from an arbitrary refill callback: [refill buf] writes at most
    [Bytes.length buf] bytes at offset 0 and returns how many were
    written, 0 meaning end of input. *)

type event =
  | Qreg of { name : string; size : int }
      (** A quantum register declaration. Its qubits occupy the next
          [size] indices of the flattened space, in declaration order. *)
  | Creg of { name : string; size : int }  (** Classical counterpart. *)
  | Gate of Gate.t
      (** One gate over flattened qubit indices. Barriers and
          measurements arrive through this constructor too, as
          {!Gate.Barrier} and {!Gate.Measure}. *)

val next_event : t -> event option
(** Pull the next event, consuming as much input as needed (one
    statement at a time; statements that expand — broadcasts, [ccx],
    user-defined gates — buffer their expansion and deliver it one event
    per call). [None] means the input was fully consumed. Raises
    {!Parse_error}. *)

val n_qubits : t -> int
(** Total qubits declared by the events pulled so far. *)

val n_clbits : t -> int
(** Total classical bits declared by the events pulled so far. *)

type survey = {
  sv_n_qubits : int;
  sv_n_clbits : int;
  sv_n_gates : int;
  sv_last_use : int array;
      (** [sv_last_use.(q)] is the stream position (0-based gate index)
          of the last gate touching qubit [q], or [-1] if [q] is never
          used. This is the retirement schedule that bounds the routing
          window in {!Dag.Window}. *)
}

val survey : t -> survey
(** Drain the stream in O(n_qubits) memory, recording only the counts
    and per-qubit last-use positions. Used as a cheap pre-pass over a
    file before streaming it a second time for routing. *)
