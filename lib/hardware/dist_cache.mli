(** Device-keyed distance-matrix cache.

    A service workload compiles thousands of circuits against a handful
    of devices, and each compilation used to pay the all-pairs
    shortest-path setup again because device objects are typically
    rebuilt per request (parsed from a manifest, constructed by
    [Devices.by_name], ...). This module memoises the {e flat row-major
    float} hop-distance matrix — the exact array the routing hot path
    scores against — across {!Coupling.t} instances, keyed by
    {!Coupling.digest} (qubit count + canonical edge list), so two
    structurally identical devices share one matrix no matter how many
    times they are re-created.

    The table is a mutex-protected LRU bounded at {!capacity} entries;
    concurrent lookups from any number of domains are safe. Returned
    arrays are shared: treat them as read-only. *)

val capacity : unit -> int
(** Current maximum resident devices (default 16). Inserting beyond it
    evicts the least recently used entry. *)

val set_capacity : int -> unit
(** Change the entry budget (process-wide). Shrinking below the current
    resident count evicts least-recently-used entries immediately.
    Raises [Invalid_argument] on a capacity below 1. *)

val lookup : Coupling.t -> float array * [ `Hit | `Miss ]
(** The device's all-pairs hop distances, flattened row-major with
    stride [Coupling.n_qubits] — from the cache ([`Hit]) when a
    structurally equal device was seen before, computed (one BFS per
    source) and inserted ([`Miss]) otherwise. The returned array is
    shared and must not be mutated. *)

val lookup_all : Coupling.t -> float array * int array * [ `Hit | `Miss ]
(** Like {!lookup}, additionally returning the {e integer} hop-count
    matrix backing the same entry (one accounting event, not two). Both
    matrices are built in one pass and cached together; the integer view
    feeds the router's exact delta scorer. Shared, read-only. *)

val hop_distances : Coupling.t -> float array
(** [fst (lookup coupling)]. *)

val hop_distances_int : Coupling.t -> int array
(** The integer matrix of {!lookup_all}, discarding the outcome. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : unit -> stats
(** Cumulative counters since start-up (or {!reset_stats}), plus the
    current resident entry count. *)

val reset_stats : unit -> unit
(** Zero the hit/miss/eviction counters; resident entries stay. *)

val clear : unit -> unit
(** Drop every resident entry (and reset the counters) — used by
    benchmarks to measure cold-cache behaviour and by tests. *)
