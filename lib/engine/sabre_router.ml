module Config = Sabre_core.Config
module Routing = Sabre_core.Routing_pass

let name = "sabre"
let deterministic = false
let derives_seed = false

let dag_exn = function
  | Some d -> d
  | None -> raise (Router.Route_failed "sabre router: Dag_pass must run first")

(* Domain-local routing scratch, keyed to the device it was sized for.
   Every domain (the caller's, and each Scheduler worker) owns exactly
   one arena and reuses it across trials, traversals and batched
   compilations against the same device instance; a different device
   simply re-sizes the slot. Keying by physical identity is deliberate:
   batch drivers share one [Coupling.t] across jobs, and a fresh
   instance would need a fresh arena anyway. *)
let scratch_slot : (Hardware.Coupling.t * Routing.Scratch.t) option ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch_for coupling =
  let slot = Domain.DLS.get scratch_slot in
  match !slot with
  | Some (c, s) when c == coupling -> s
  | _ ->
    let s = Routing.Scratch.create coupling in
    slot := Some (coupling, s);
    s

(* Traversal i (1-based) routes forward when i is odd, backward when
   even; the traversal count is odd so the last one is forward and its
   input mapping is the reverse-traversal-optimised initial mapping. *)
let route (ctx : Context.t) ~initial =
  let forward = dag_exn ctx.dag_forward in
  let total = ctx.config.Config.traversals in
  let backward = if total > 1 then dag_exn ctx.dag_backward else forward in
  let scratch = scratch_for ctx.coupling in
  let hook =
    Option.map (fun r -> Race.hook r) ctx.Context.race
  in
  let rec go i mapping first steps fallbacks scoring =
    let oriented = if i mod 2 = 1 then forward else backward in
    (* only the last (forward) traversal's counters certify a pruning
       bound — its result is the one the trial reports *)
    (match ctx.Context.race with
    | Some r -> Race.note_traversal r ~final:(i = total)
    | None -> ());
    let r =
      Routing.run_with_scratch ~scratch ~dist:ctx.dist ?dist_int:ctx.dist_int
        ~scoring:ctx.scoring_mode ?hook ctx.config ctx.coupling oriented
        mapping
    in
    let first = match first with None -> Some r.Routing.n_swaps | s -> s in
    let steps = steps + r.Routing.search_steps in
    let fallbacks = fallbacks + r.Routing.fallback_swaps in
    let scoring = Sabre_core.Stats.scoring_add scoring r.Routing.scoring in
    if i = total then
      {
        Router.physical = r.Routing.physical;
        trial_initial = mapping;
        final_mapping = r.Routing.final_mapping;
        n_swaps = r.Routing.n_swaps;
        first_swaps = Option.get first;
        search_steps = steps;
        fallback_swaps = fallbacks;
        traversals = total;
        scoring;
      }
    else go (i + 1) r.Routing.final_mapping first steps fallbacks scoring
  in
  go 1 initial None 0 0 Sabre_core.Stats.scoring_zero

let router : Router.t =
  (module struct
    let name = name
    let deterministic = deterministic
    let derives_seed = derives_seed
    let route = route
  end)

let () = Router.register router
