(** Minimal binary min-heap keyed by float priority. Ties pop in
    insertion order (FIFO), which keeps the A* search deterministic. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
val size : 'a t -> int
val is_empty : 'a t -> bool
