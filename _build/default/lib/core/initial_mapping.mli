module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

(** Initial-mapping strategies.

    SABRE's own answer to the initial-mapping problem is the reverse
    traversal (Section IV-C2), which needs no strategy beyond a random
    start. This module collects the alternatives the paper compares
    against, as seeds for {!Compiler.route_with_initial} and for the
    ablation benchmarks:

    - {!trivial} — logical qubit q on physical qubit q;
    - {!random} — uniform injective placement (the paper's trial seed);
    - {!degree_matching} — Siraichi et al.'s heuristic (Section VII):
      rank logical qubits by how many distinct partners they interact
      with, physical qubits by coupling degree, and match ranks;
    - {!interaction_greedy} — the beginning-of-circuit greedy placement
      our BKA re-implementation uses (Zulehner et al. determine their
      initial mapping "by those two-qubit gates at the beginning of the
      circuit"). *)

val trivial : Coupling.t -> Circuit.t -> Mapping.t
(** Identity placement. *)

val random : state:Random.State.t -> Coupling.t -> Circuit.t -> Mapping.t
(** Uniform random injective placement. *)

val degree_matching : Coupling.t -> Circuit.t -> Mapping.t
(** Match interaction-degree rank to coupling-degree rank (no temporal
    information, as the paper notes when critiquing it). Deterministic:
    ties break by index. *)

val interaction_greedy : Coupling.t -> Circuit.t -> Mapping.t
(** Greedy beginning-of-circuit placement: walk the two-qubit gates in
    program order, placing unplaced operands adjacently when possible
    and nearest-free otherwise. *)
