lib/sim/tracker.mli: Format Hardware Quantum
