lib/core/compiler.ml: Config Hardware List Mapping Option Quantum Random Routing_pass Stats Sys
