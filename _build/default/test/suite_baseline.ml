module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Layering = Baseline.Layering
module Greedy = Baseline.Greedy_router
module Bka = Baseline.Bka

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Layering                                                            *)
(* ------------------------------------------------------------------ *)

let test_partition_greedy () =
  let c =
    Circuit.create ~n_qubits:4
      [ Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 2); Gate.Cnot (0, 3) ]
  in
  let layers = Layering.partition c in
  check Alcotest.int "two layers" 2 (List.length layers);
  check Alcotest.int "first layer" 2
    (List.length (List.nth layers 0).Layering.gates);
  check Alcotest.int "second layer" 2
    (List.length (List.nth layers 1).Layering.gates)

let test_partition_layers_disjoint () =
  let c = Helpers.random_circuit ~seed:17 ~n:8 ~gates:60 in
  List.iter
    (fun layer ->
      let qs = List.concat_map Gate.qubits layer.Layering.gates in
      check Alcotest.int "no qubit reuse inside layer"
        (List.length qs)
        (List.length (List.sort_uniq Int.compare qs)))
    (Layering.partition c)

let test_partition_preserves_gates () =
  let c = Helpers.random_circuit ~seed:18 ~n:6 ~gates:40 in
  let flattened =
    List.concat_map (fun l -> l.Layering.gates) (Layering.partition c)
  in
  check Alcotest.int "same count" (Circuit.length c) (List.length flattened)

let test_partition_asap_wider () =
  (* ASAP layering exposes at least as much concurrency as greedy *)
  let c = Workloads.Ising.circuit ~steps:2 8 in
  let greedy = List.length (Layering.partition c) in
  let asap = List.length (Layering.partition_asap c) in
  check Alcotest.bool
    (Printf.sprintf "asap %d <= greedy %d" asap greedy)
    true (asap <= greedy)

let test_partition_asap_respects_dependencies () =
  let c = Helpers.random_circuit ~seed:19 ~n:6 ~gates:50 in
  let flattened =
    List.concat_map (fun l -> l.Layering.gates) (Layering.partition_asap c)
  in
  let relinearised = Circuit.create ~n_qubits:6 flattened in
  check Alcotest.bool "same partial order" true
    (Circuit.equal_up_to_reordering c relinearised)

let test_barrier_closes_layer () =
  let c =
    Circuit.create ~n_qubits:4
      [ Gate.Cnot (0, 1); Gate.Barrier [ 0; 1; 2; 3 ]; Gate.Cnot (2, 3) ]
  in
  check Alcotest.int "two layers" 2 (List.length (Layering.partition c))

(* ------------------------------------------------------------------ *)
(* Greedy router                                                       *)
(* ------------------------------------------------------------------ *)

let verify_greedy device c (r : Greedy.result) label =
  Helpers.assert_routed ~coupling:device
    ~initial:(Mapping.l2p_array r.initial_mapping)
    ~final:(Mapping.l2p_array r.final_mapping)
    ~logical:c ~physical:r.physical label

let test_greedy_correct () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let r = Greedy.run device c in
  verify_greedy device c r "greedy qft5";
  check Alcotest.bool "swaps inserted" true (r.n_swaps > 0)

let test_greedy_no_swaps_when_adjacent () =
  let device = Devices.linear 4 in
  let c = Workloads.Ghz.circuit 4 in
  let r = Greedy.run device c in
  check Alcotest.int "zero" 0 r.n_swaps

let test_greedy_respects_given_initial () =
  let device = Devices.linear 4 in
  let c = Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1) ] in
  let m = Mapping.of_array ~n_physical:4 [| 0; 3 |] in
  let r = Greedy.run ~initial:m device c in
  check Alcotest.int "distance-1 swaps" 2 r.n_swaps;
  verify_greedy device c r "greedy initial"

let test_greedy_on_tokyo_random () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:23 ~n:16 ~gates:200 in
  let r = Greedy.run device c in
  verify_greedy device c r "greedy tokyo"

(* ------------------------------------------------------------------ *)
(* BKA                                                                 *)
(* ------------------------------------------------------------------ *)

let verify_bka device c (r : Bka.result) label =
  Helpers.assert_routed ~coupling:device
    ~initial:(Mapping.l2p_array r.initial_mapping)
    ~final:(Mapping.l2p_array r.final_mapping)
    ~logical:c ~physical:r.physical label

let run_bka ?config device c =
  match Bka.run ?config device c with
  | Ok r -> r
  | Error f -> Alcotest.failf "BKA failed: %a" Bka.pp_failure f

let test_bka_correct_small () =
  let device = Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let r = run_bka device c in
  verify_bka device c r "bka qft5"

let test_bka_correct_tokyo () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Helpers.random_circuit ~seed:29 ~n:10 ~gates:150 in
  let r = run_bka device c in
  verify_bka device c r "bka tokyo"

let test_bka_no_swaps_when_adjacent () =
  (* a 3-qubit chain is placed perfectly by BKA's greedy first-gates
     heuristic; longer chains are not (its initial mapping lacks global
     view — the weakness Section IV-C2 calls out) *)
  let device = Devices.linear 3 in
  let c = Workloads.Ghz.circuit 3 in
  let r = run_bka device c in
  check Alcotest.int "zero" 0 r.n_swaps

let test_bka_initial_mapping_not_global () =
  (* documents the paper's observation: on a 5-chain the beginning-of-
     circuit placement paints itself into a corner and needs SWAPs,
     while SABRE's reverse traversal finds the perfect embedding *)
  let device = Devices.linear 5 in
  let c = Workloads.Ghz.circuit 5 in
  let bka = run_bka device c in
  let sabre = Sabre.Compiler.run device c in
  check Alcotest.bool "bka pays swaps" true (bka.n_swaps > 0);
  check Alcotest.int "sabre finds the embedding" 0 sabre.stats.n_swaps

let test_bka_initial_mapping_places_first_gates () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Circuit.create ~n_qubits:4 [ Gate.Cnot (0, 1); Gate.Cnot (2, 3) ] in
  let m = Bka.initial_mapping device c in
  check Alcotest.bool "first pair adjacent" true
    (Coupling.connected device (Mapping.to_physical m 0)
       (Mapping.to_physical m 1));
  check Alcotest.bool "second pair adjacent" true
    (Coupling.connected device (Mapping.to_physical m 2)
       (Mapping.to_physical m 3))

let test_bka_budget_exhaustion () =
  let device = Devices.ibm_q20_tokyo () in
  let c = Workloads.Ising.circuit ~steps:2 16 in
  match
    Bka.run ~config:{ Bka.default_config with node_budget = 1_000 } device c
  with
  | Error (Bka.Node_budget_exhausted { nodes; _ }) ->
    check Alcotest.bool "reported nodes beyond budget" true (nodes > 1_000)
  | Ok _ -> Alcotest.fail "expected OOM with tiny budget"

let test_bka_beats_greedy_on_average () =
  (* the paper's quality ordering: BKA < greedy in added swaps *)
  let device = Devices.ibm_q20_tokyo () in
  let total_bka = ref 0 and total_greedy = ref 0 in
  for seed = 1 to 3 do
    let c = Helpers.random_circuit ~seed ~n:12 ~gates:120 in
    let b = run_bka device c in
    let g = Greedy.run ~initial:b.initial_mapping device c in
    total_bka := !total_bka + b.n_swaps;
    total_greedy := !total_greedy + g.n_swaps
  done;
  check Alcotest.bool
    (Printf.sprintf "bka %d <= greedy %d" !total_bka !total_greedy)
    true (!total_bka <= !total_greedy)

let test_heap_order () =
  let h = Baseline.Heap.create () in
  check Alcotest.bool "empty" true (Baseline.Heap.is_empty h);
  List.iter (fun (p, v) -> Baseline.Heap.push h p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (1.0, "a2") ];
  check Alcotest.int "size" 4 (Baseline.Heap.size h);
  let pop () =
    match Baseline.Heap.pop h with Some (_, v) -> v | None -> "<empty>"
  in
  check Alcotest.string "min first" "a" (pop ());
  check Alcotest.string "fifo tie" "a2" (pop ());
  check Alcotest.string "then b" "b" (pop ());
  check Alcotest.string "then c" "c" (pop ());
  check Alcotest.bool "drained" true (Baseline.Heap.pop h = None)

let suite =
  [
    tc "layering: greedy partition" `Quick test_partition_greedy;
    tc "layering: layers disjoint" `Quick test_partition_layers_disjoint;
    tc "layering: gates preserved" `Quick test_partition_preserves_gates;
    tc "layering: asap not wider than greedy" `Quick test_partition_asap_wider;
    tc "layering: asap respects dependencies" `Quick
      test_partition_asap_respects_dependencies;
    tc "layering: barrier closes layer" `Quick test_barrier_closes_layer;
    tc "greedy: correct" `Quick test_greedy_correct;
    tc "greedy: no swaps when adjacent" `Quick test_greedy_no_swaps_when_adjacent;
    tc "greedy: respects given initial" `Quick test_greedy_respects_given_initial;
    tc "greedy: tokyo random" `Quick test_greedy_on_tokyo_random;
    tc "bka: correct small" `Quick test_bka_correct_small;
    tc "bka: correct tokyo" `Quick test_bka_correct_tokyo;
    tc "bka: no swaps when adjacent" `Quick test_bka_no_swaps_when_adjacent;
    tc "bka: initial mapping not global" `Quick test_bka_initial_mapping_not_global;
    tc "bka: initial mapping places first gates" `Quick
      test_bka_initial_mapping_places_first_gates;
    tc "bka: budget exhaustion" `Quick test_bka_budget_exhaustion;
    tc "bka: beats greedy" `Slow test_bka_beats_greedy_on_average;
    tc "heap: ordering" `Quick test_heap_order;
  ]
