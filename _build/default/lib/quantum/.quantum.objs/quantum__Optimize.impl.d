lib/quantum/optimize.ml: Array Circuit Float Gate List Option
