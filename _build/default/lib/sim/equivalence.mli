module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

(** Unitary-level equivalence of a routed circuit with its source, by
    dense simulation. Exponential in qubit count — intended for tests with
    up to ~12 physical qubits; use {!Tracker} for larger instances. *)

val routed_equivalent :
  ?states:int ->
  ?seed:int ->
  ?tol:float ->
  initial:int array ->
  final:int array ->
  logical:Circuit.t ->
  physical:Circuit.t ->
  unit ->
  bool
(** [routed_equivalent ~initial ~final ~logical ~physical ()] checks that
    for [states] (default 4) random input states |ψ⟩ on the logical
    register:

    embed |ψ⟩ into the physical register through the [initial] mapping
    (unused physical qubits in |0⟩), run [physical], un-permute through
    [final] — the result must match running [logical] on |ψ⟩ (tensored
    with the idle qubits), up to global phase and [tol].

    Measurements in either circuit are ignored. *)

val circuits_equivalent :
  ?states:int -> ?seed:int -> ?tol:float -> Circuit.t -> Circuit.t -> bool
(** Plain unitary equivalence of two same-width circuits (up to global
    phase), by random-state simulation. *)
