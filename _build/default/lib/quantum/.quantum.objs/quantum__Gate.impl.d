lib/quantum/gate.ml: Float Format Int List Printf Stdlib
