(** A composable pipeline stage.

    A pass is a named [Context.t -> Context.t] transformation. Passes
    receive the active {!Instrument.t} sink so they can emit counters;
    timing is handled uniformly by {!Pipeline.run}. *)

type t = {
  name : string;
  run : instrument:Instrument.t -> Context.t -> Context.t;
}

val make :
  string -> (instrument:Instrument.t -> Context.t -> Context.t) -> t

val count : Instrument.t -> pass:string -> Context.t -> string -> int -> Context.t
(** Record a counter both in the context and on the sink. *)
