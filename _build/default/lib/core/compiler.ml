module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling

type result = {
  physical : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  stats : Stats.t;
}

type trial = {
  routed : Routing_pass.result;  (* last forward pass *)
  trial_initial : Mapping.t;  (* mapping that seeded the last pass *)
  first_swaps : int;  (* swaps of the first forward pass *)
  steps : int;  (* search steps over all passes of this trial *)
  fallbacks : int;
}

let check_device coupling circuit =
  if Circuit.n_qubits circuit > Coupling.n_qubits coupling then
    invalid_arg "Sabre.Compiler: circuit wider than device";
  if
    Circuit.n_qubits circuit > 1
    && not (Coupling.is_connected_graph coupling)
  then invalid_arg "Sabre.Compiler: disconnected coupling graph"

(* Pass i (1-based) routes forward when i is odd, backward when even;
   the final mapping of each pass seeds the next. Because the traversal
   count is odd, the last pass is forward and its input mapping is the
   reverse-traversal-optimised initial mapping. *)
let run_trial ?dist config coupling ~forward ~backward m0 =
  let total = config.Config.traversals in
  let rec go i mapping first steps fallbacks =
    let oriented = if i mod 2 = 1 then forward else backward in
    let r = Routing_pass.run ?dist config coupling oriented mapping in
    let first =
      match first with None -> Some r.Routing_pass.n_swaps | s -> s
    in
    let steps = steps + r.Routing_pass.search_steps in
    let fallbacks = fallbacks + r.Routing_pass.fallback_swaps in
    if i = total then
      {
        routed = r;
        trial_initial = mapping;
        first_swaps = Option.get first;
        steps;
        fallbacks;
      }
    else go (i + 1) r.Routing_pass.final_mapping first steps fallbacks
  in
  go 1 m0 None 0 0

(* Default trial ranking: fewest SWAPs, then lowest depth. With a noise
   model, rank by estimated success probability instead — equally cheap
   routings then resolve toward reliable couplers (variability-aware
   mapping, the Section VI extension). *)
let better ?noise a b =
  match noise with
  | Some model ->
    Hardware.Noise.circuit_success_probability model
      a.routed.Routing_pass.physical
    > Hardware.Noise.circuit_success_probability model
        b.routed.Routing_pass.physical
  | None ->
    let swaps t = t.routed.Routing_pass.n_swaps in
    if swaps a <> swaps b then swaps a < swaps b
    else
      Quantum.Depth.depth_swap3 a.routed.Routing_pass.physical
      < Quantum.Depth.depth_swap3 b.routed.Routing_pass.physical

let run ?(config = Config.default) ?dist ?noise coupling circuit =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sabre.Compiler: " ^ msg));
  check_device coupling circuit;
  let t0 = Sys.time () in
  let build =
    if config.commutation_aware then Dag.of_circuit_commuting
    else Dag.of_circuit
  in
  let forward = build circuit in
  let backward = build (Circuit.reverse circuit) in
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  let rng = Random.State.make [| config.seed |] in
  let trials =
    List.init config.trials (fun _ ->
        let m0 = Mapping.random ~state:rng ~n_logical ~n_physical in
        run_trial ?dist config coupling ~forward ~backward m0)
  in
  let best =
    match trials with
    | [] -> assert false
    | t :: rest ->
      List.fold_left (fun b t -> if better ?noise t b then t else b) t rest
  in
  let total_steps = List.fold_left (fun acc t -> acc + t.steps) 0 trials in
  let total_fb = List.fold_left (fun acc t -> acc + t.fallbacks) 0 trials in
  let time_s = Sys.time () -. t0 in
  let routed = best.routed in
  {
    physical = routed.Routing_pass.physical;
    initial_mapping = best.trial_initial;
    final_mapping = routed.Routing_pass.final_mapping;
    stats =
      Stats.summary ~original:circuit ~routed:routed.Routing_pass.physical
        ~n_swaps:routed.Routing_pass.n_swaps ~search_steps:total_steps
        ~fallback_swaps:total_fb
        ~traversals_run:(config.trials * config.traversals)
        ~time_s ~first_traversal_swaps:best.first_swaps;
  }

let route_with_initial ?(config = Config.default) ?dist coupling circuit initial =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sabre.Compiler: " ^ msg));
  check_device coupling circuit;
  let t0 = Sys.time () in
  let dag =
    if config.commutation_aware then Dag.of_circuit_commuting circuit
    else Dag.of_circuit circuit
  in
  let r = Routing_pass.run ?dist config coupling dag initial in
  let time_s = Sys.time () -. t0 in
  {
    physical = r.Routing_pass.physical;
    initial_mapping = Mapping.copy initial;
    final_mapping = r.Routing_pass.final_mapping;
    stats =
      Stats.summary ~original:circuit ~routed:r.Routing_pass.physical
        ~n_swaps:r.Routing_pass.n_swaps
        ~search_steps:r.Routing_pass.search_steps
        ~fallback_swaps:r.Routing_pass.fallback_swaps ~traversals_run:1
        ~time_s ~first_traversal_swaps:r.Routing_pass.n_swaps;
  }
