type t = {
  circuit : Circuit.t;
  gates : Gate.t array;  (* cached copy of the circuit's gates *)
  succ : int list array;  (* distinct successors, ascending *)
  pred : int list array;  (* distinct predecessors, ascending *)
  (* CSR (compressed-sparse-row) view of the same adjacency: row [i]
     spans [off.(i) .. off.(i+1) - 1] of [idx], ascending within a row.
     The hot routing loops traverse these instead of the lists. *)
  succ_off : int array;
  succ_idx : int array;
  pred_off : int array;
  pred_idx : int array;
  (* per-node operand table: for a two-qubit gate the logical pair,
     [(-1, -1)] otherwise, so the router never re-matches on Gate.t *)
  pair_q1 : int array;
  pair_q2 : int array;
}

let csr_of_lists n rows =
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + List.length rows.(i)
  done;
  let idx = Array.make off.(n) 0 in
  for i = 0 to n - 1 do
    List.iteri (fun k j -> idx.(off.(i) + k) <- j) rows.(i)
  done;
  (off, idx)

let finalize circuit gates succ pred =
  let n = Array.length gates in
  let succ_off, succ_idx = csr_of_lists n succ in
  let pred_off, pred_idx = csr_of_lists n pred in
  let pair_q1 = Array.make n (-1) and pair_q2 = Array.make n (-1) in
  for i = 0 to n - 1 do
    match Gate.two_qubit_pair gates.(i) with
    | Some (q1, q2) ->
      pair_q1.(i) <- q1;
      pair_q2.(i) <- q2
    | None -> ()
  done;
  {
    circuit;
    gates;
    succ;
    pred;
    succ_off;
    succ_idx;
    pred_off;
    pred_idx;
    pair_q1;
    pair_q2;
  }

let of_circuit circuit =
  let gates = Circuit.gate_array circuit in
  let n = Array.length gates in
  let succ = Array.make n [] and pred = Array.make n [] in
  (* last.(q) is the most recent node touching qubit q *)
  let last = Array.make (Circuit.n_qubits circuit) (-1) in
  for i = 0 to n - 1 do
    let deps =
      Gate.qubits gates.(i)
      |> List.filter_map (fun q ->
             let p = last.(q) in
             if p >= 0 then Some p else None)
      |> List.sort_uniq Int.compare
    in
    pred.(i) <- deps;
    List.iter (fun p -> succ.(p) <- i :: succ.(p)) deps;
    List.iter (fun q -> last.(q) <- i) (Gate.qubits gates.(i))
  done;
  (* successor lists were built in reverse; deduplicate and sort *)
  Array.iteri (fun i l -> succ.(i) <- List.sort_uniq Int.compare l) succ;
  finalize circuit gates succ pred

(* Commutation-aware construction. Per qubit we keep two gate groups:
   [current] — the most recent gates that pairwise commute with each
   other's successors on this qubit — and [previous], the group every
   [current] member depends on. A new gate joins [current] when it
   commutes with all its members; otherwise [current] becomes its
   dependency set and starts over. *)
let of_circuit_commuting circuit =
  let gates = Circuit.gate_array circuit in
  let n = Array.length gates in
  let nq = Circuit.n_qubits circuit in
  let previous = Array.make nq [] and current = Array.make nq [] in
  let pred = Array.make n [] and succ = Array.make n [] in
  for i = 0 to n - 1 do
    let deps = ref [] in
    List.iter
      (fun q ->
        let commutes_with_all =
          List.for_all (fun j -> Commutation.commute gates.(i) gates.(j))
            current.(q)
        in
        if commutes_with_all then begin
          deps := previous.(q) @ !deps;
          current.(q) <- i :: current.(q)
        end
        else begin
          deps := current.(q) @ !deps;
          previous.(q) <- current.(q);
          current.(q) <- [ i ]
        end)
      (Gate.qubits gates.(i));
    let deps = List.sort_uniq Int.compare !deps in
    pred.(i) <- deps;
    List.iter (fun p -> succ.(p) <- i :: succ.(p)) deps
  done;
  Array.iteri (fun i l -> succ.(i) <- List.sort_uniq Int.compare l) succ;
  finalize circuit gates succ pred

let matches_linearization d c =
  let n = Array.length d.gates in
  if Circuit.length c <> n then false
  else begin
    let remaining = Array.init n (fun i -> List.length d.pred.(i)) in
    let consumed = Array.make n false in
    (* ready nodes indexed by gate value for O(1)-ish matching *)
    let ready : (Gate.t, int list) Hashtbl.t = Hashtbl.create 64 in
    let add_ready i =
      let g = d.gates.(i) in
      Hashtbl.replace ready g
        (i :: Option.value ~default:[] (Hashtbl.find_opt ready g))
    in
    for i = 0 to n - 1 do
      if remaining.(i) = 0 then add_ready i
    done;
    let ok = ref true in
    List.iter
      (fun g ->
        if !ok then
          match Hashtbl.find_opt ready g with
          | Some (i :: rest) ->
            (if rest = [] then Hashtbl.remove ready g
             else Hashtbl.replace ready g rest);
            consumed.(i) <- true;
            List.iter
              (fun j ->
                remaining.(j) <- remaining.(j) - 1;
                if remaining.(j) = 0 then add_ready j)
              d.succ.(i)
          | Some [] | None -> ok := false)
      (Circuit.gates c);
    !ok && Array.for_all Fun.id consumed
  end

let circuit d = d.circuit
let n_nodes d = Array.length d.succ
let gate d i = d.gates.(i)
let successors d i = d.succ.(i)
let predecessors d i = d.pred.(i)
let in_degree d i = d.pred_off.(i + 1) - d.pred_off.(i)
let out_degree d i = d.succ_off.(i + 1) - d.succ_off.(i)

let succ_iter d i f =
  for k = d.succ_off.(i) to d.succ_off.(i + 1) - 1 do
    f d.succ_idx.(k)
  done

let pred_iter d i f =
  for k = d.pred_off.(i) to d.pred_off.(i + 1) - 1 do
    f d.pred_idx.(k)
  done

let pair_q1 d i = d.pair_q1.(i)
let pair_q2 d i = d.pair_q2.(i)
let is_two_qubit_node d i = d.pair_q1.(i) >= 0

let two_qubit_pair d i =
  if d.pair_q1.(i) >= 0 then Some (d.pair_q1.(i), d.pair_q2.(i)) else None

let initial_front d =
  let acc = ref [] in
  for i = n_nodes d - 1 downto 0 do
    if in_degree d i = 0 then acc := i :: !acc
  done;
  !acc

let topological_order d =
  let n = n_nodes d in
  let indeg = Array.init n (fun i -> in_degree d i) in
  let module Q = Queue in
  let q = Q.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Q.add i q
  done;
  let order = ref [] in
  while not (Q.is_empty q) do
    let i = Q.pop q in
    order := i :: !order;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Q.add j q)
      d.succ.(i)
  done;
  let order = List.rev !order in
  assert (List.length order = n);
  order

let two_qubit_nodes d =
  let gates = Circuit.gate_array d.circuit in
  let acc = ref [] in
  for i = Array.length gates - 1 downto 0 do
    if Gate.is_two_qubit gates.(i) then acc := i :: !acc
  done;
  !acc

(* Explicit worklist: the naive recursion is one frame per DAG node on a
   chain circuit and overflows the stack on long programs. Every node is
   marked before it is pushed, so the stack never holds a node twice and
   an [n]-slot array suffices. *)
let descendant_count d i =
  let n = n_nodes d in
  let seen = Array.make n false in
  let stack = Array.make (max 1 n) 0 in
  let top = ref 0 in
  let count = ref 0 in
  stack.(!top) <- i;
  incr top;
  while !top > 0 do
    decr top;
    let j = stack.(!top) in
    for k = d.succ_off.(j) to d.succ_off.(j + 1) - 1 do
      let s = d.succ_idx.(k) in
      if not seen.(s) then begin
        seen.(s) <- true;
        incr count;
        stack.(!top) <- s;
        incr top
      end
    done
  done;
  !count
