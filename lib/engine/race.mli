(** Shared racing state for speculative best-of-K routing.

    A race couples K competing compilations of the same circuit through
    one atomic {e incumbent} register and hands each competitor a token
    whose {!hook} plugs into {!Sabre_core.Routing_pass}'s cooperative
    progress callback. Two independent cancellation causes flow through
    the same token:

    - {b hard cancel} — {!cancel} (or a [should_stop] probe: deadline
      expiry, client disconnect) unconditionally stops the run at the
      next progress check;
    - {b incumbent-bound pruning} — once some entry completes with
      objective value [S], any entry whose certified lower bound packs
      above the incumbent under the first-best tie-break is stopped,
      because it provably cannot be selected as the winner.

    {b Why pruning preserves the winner bit for bit.} Winner selection
    ({!Trial_runner.best} over entry outcomes) minimises the pair
    (objective value, entry index) lexicographically — strict
    improvement wins, ties keep the earliest entry. That pair is packed
    into a single integer (value in the high bits, index in the low
    {!index_bits}), so the selection is the argmin of packed keys. The
    incumbent is the atomic minimum of the packed keys of entries
    completed so far; a token stops its run only when
    [pack lb index > incumbent] for a certified lower bound [lb] on its
    final value — its final key would also exceed the incumbent, so the
    argmin is unchanged whether the entry finishes or not. Entries that
    do finish are untouched (the hook never alters routing decisions),
    so the surviving outcomes, and hence the winner, are identical to
    the unpruned run.

    The bound is only certified to be above zero during the last
    trial's final forward traversal (the one whose result the trial
    reports): earlier traversals and unfinished trials say nothing
    about the reported value, so the token bounds them at 0 — still
    enough to prune against a zero-value incumbent with a smaller
    index. Success-probability objectives have no monotone counter and
    must not create a group at all (hard-cancel-only tokens). *)

type bound =
  | Swaps_bound  (** prune on the monotone SWAPs-inserted counter *)
  | Depth_bound  (** prune on the monotone prefix ASAP depth bound *)

type group
(** The shared incumbent register of one race. *)

val group : unit -> group

type t
(** One competitor's token. The trial bookkeeping inside is entry-local
    (sequential trials on one domain); only the cancel flag and the
    incumbent are shared across domains. *)

val index_bits : int
(** Entry indices must fit in this many bits (values take the rest). *)

val token : ?should_stop:(unit -> bool) -> unit -> t
(** A hard-cancel-only token (no pruning group): for serve requests,
    where the only cancellation causes are deadline expiry and client
    disconnect. [should_stop] is polled at every progress check and at
    claim time; returning [true] latches the cancelled flag. *)

val entry :
  group:group -> bound:bound -> index:int -> ?should_stop:(unit -> bool) ->
  unit -> t
(** A racing competitor's token. Raises [Invalid_argument] when [index]
    exceeds {!index_bits}. *)

val cancel : t -> unit
(** Hard-cancel: the run stops at its next progress check, claim-time
    checks skip the job entirely. *)

val cancelled : t -> bool
(** Hard-cancelled, or the [should_stop] probe fired (which latches). *)

val was_cancelled : t -> bool
(** The latched flag only — no probe call; for post-run reporting.
    Set by {!cancel}, a fired [should_stop] probe, or a {!hook} that
    stopped the run by incumbent-bound pruning. *)

val needs_depth : t -> bool
(** Whether {!note_trial_done}/{!complete} callers must supply a real
    depth (the token prunes on [Depth_bound]); lets the trial loop skip
    the per-trial depth computation otherwise. *)

val note_trial : t -> last:bool -> unit
(** The entry starts a trial; [last] marks the final one. Call only
    under sequential trial execution. *)

val note_trial_done : t -> swaps:int -> depth:int -> unit
(** The trial completed with these reported values; folds into the
    completed-trials minimum. [depth] may be 0 when {!needs_depth} is
    false. *)

val note_traversal : t -> final:bool -> unit
(** The in-flight trial starts a traversal; [final] marks the last
    (forward) one, whose counters certify the bound. *)

val complete : t -> swaps:int -> depth:int -> unit
(** The whole entry finished with these objective values: folds
    [pack value index] into the incumbent (atomic min). Never call for
    failed entries. *)

val skip_at_claim : t -> bool
(** Claim-time check: hard-cancelled, or already beaten with the
    trivial bound 0 (an earlier entry completed at value 0). *)

val hook : ?every:int -> t -> Sabre_core.Routing_pass.hook
(** The progress hook to install into the routing pass: checks hard
    cancellation, then the certified bound against the incumbent.
    [every] (default 64) is the decision granularity. *)
