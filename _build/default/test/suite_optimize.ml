module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Optimize = Quantum.Optimize

let check = Alcotest.check
let tc = Alcotest.test_case

let circ gates = Circuit.create ~n_qubits:4 gates
let lengths_after c = Circuit.length (Optimize.run c)

let test_hh_cancels () =
  check Alcotest.int "hh" 0
    (lengths_after (circ [ Gate.Single (H, 0); Gate.Single (H, 0) ]));
  check Alcotest.int "xx" 0
    (lengths_after (circ [ Gate.Single (X, 1); Gate.Single (X, 1) ]))

let test_s_sdg_cancels () =
  check Alcotest.int "s sdg" 0
    (lengths_after (circ [ Gate.Single (S, 0); Gate.Single (Sdg, 0) ]));
  check Alcotest.int "tdg t" 0
    (lengths_after (circ [ Gate.Single (Tdg, 0); Gate.Single (T, 0) ]))

let test_different_qubits_kept () =
  check Alcotest.int "h on 0 and 1" 2
    (lengths_after (circ [ Gate.Single (H, 0); Gate.Single (H, 1) ]))

let test_cnot_pair_cancels () =
  check Alcotest.int "cx cx" 0
    (lengths_after (circ [ Gate.Cnot (0, 1); Gate.Cnot (0, 1) ]));
  (* opposite orientation does NOT cancel *)
  check Alcotest.int "cx reversed" 2
    (lengths_after (circ [ Gate.Cnot (0, 1); Gate.Cnot (1, 0) ]))

let test_symmetric_gates_cancel_any_orientation () =
  check Alcotest.int "cz" 0
    (lengths_after (circ [ Gate.Cz (0, 1); Gate.Cz (1, 0) ]));
  check Alcotest.int "swap" 0
    (lengths_after (circ [ Gate.Swap (2, 3); Gate.Swap (3, 2) ]))

let test_interleaved_gate_blocks_cancellation () =
  (* a gate on qubit 1 sits between the two CNOTs: they are not adjacent
     in the dependency order, no cancellation *)
  check Alcotest.int "blocked" 3
    (lengths_after
       (circ [ Gate.Cnot (0, 1); Gate.Single (H, 1); Gate.Cnot (0, 1) ]));
  (* a spectator on another qubit does not block *)
  check Alcotest.int "spectator" 1
    (lengths_after
       (circ [ Gate.Cnot (0, 1); Gate.Single (H, 2); Gate.Cnot (0, 1) ]))

let test_rotation_merging () =
  let out =
    Optimize.run (circ [ Gate.Single (Rz 0.3, 0); Gate.Single (Rz 0.4, 0) ])
  in
  (match Circuit.gates out with
  | [ Gate.Single (Rz a, 0) ] -> check (Alcotest.float 1e-12) "sum" 0.7 a
  | _ -> Alcotest.fail "expected one merged rz");
  check Alcotest.int "rz cancels to zero" 0
    (lengths_after (circ [ Gate.Single (Rz 0.3, 0); Gate.Single (Rz (-0.3), 0) ]))

let test_identity_dropped () =
  check Alcotest.int "id" 0 (lengths_after (circ [ Gate.Single (I, 0) ]))

let test_cascade () =
  (* A B B† A† collapses fully in one run *)
  check Alcotest.int "nested" 0
    (lengths_after
       (circ
          [
            Gate.Single (H, 0); Gate.Cnot (0, 1); Gate.Cnot (0, 1);
            Gate.Single (H, 0);
          ]))

let test_barrier_blocks () =
  check Alcotest.int "barrier" 3
    (lengths_after
       (circ [ Gate.Single (H, 0); Gate.Barrier [ 0; 1 ]; Gate.Single (H, 0) ]))

let test_measure_blocks () =
  check Alcotest.int "measure" 3
    (lengths_after
       (circ [ Gate.Single (X, 0); Gate.Measure (0, 0); Gate.Single (X, 0) ]))

let test_swap_cnot_pattern () =
  (* SWAP(a,b) expanded then re-cancelling against an adjacent CX(a,b):
     cx ab; cx ba; cx ab; cx ab -> cx ab; cx ba *)
  let c =
    circ (Quantum.Decompose.swap_to_cnots 0 1 @ [ Gate.Cnot (0, 1) ])
  in
  check Alcotest.int "one pair cancels" 2 (lengths_after c)

let test_preserves_unitary () =
  List.iter
    (fun seed ->
      let c =
        Quantum.Decompose.expand_swaps
          (Helpers.random_circuit ~seed ~n:5 ~gates:60)
      in
      let o = Optimize.run c in
      check Alcotest.bool
        (Printf.sprintf "seed %d unitary preserved" seed)
        true
        (Sim.Equivalence.circuits_equivalent c o);
      check Alcotest.bool "no growth" true (Circuit.length o <= Circuit.length c))
    [ 1; 2; 3; 4; 5 ]

let test_idempotent () =
  let c = Helpers.random_circuit ~seed:6 ~n:5 ~gates:80 in
  let once = Optimize.run c in
  let twice = Optimize.run once in
  check Alcotest.bool "fixed point" true (Circuit.equal once twice)

let test_removed_count () =
  let c = circ [ Gate.Single (H, 0); Gate.Single (H, 0); Gate.Cnot (0, 1) ] in
  check Alcotest.int "2 removed" 2 (Optimize.removed_gate_count c)

let test_compliance_preserved_after_routing () =
  (* optimising a routed circuit must not break hardware compliance *)
  let device = Hardware.Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let r = Sabre.Compiler.run device c in
  let optimised = Optimize.run (Quantum.Decompose.expand_swaps r.physical) in
  (match Sim.Tracker.check_compliance ~coupling:device optimised with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%a" Sim.Tracker.pp_error e);
  check Alcotest.bool "unitary preserved" true
    (Sim.Equivalence.circuits_equivalent
       (Quantum.Decompose.expand_swaps r.physical)
       optimised)

let suite =
  [
    tc "self-inverse singles cancel" `Quick test_hh_cancels;
    tc "inverse pairs cancel" `Quick test_s_sdg_cancels;
    tc "different qubits kept" `Quick test_different_qubits_kept;
    tc "cnot pair cancels" `Quick test_cnot_pair_cancels;
    tc "symmetric 2q cancel both ways" `Quick test_symmetric_gates_cancel_any_orientation;
    tc "interleaved gate blocks" `Quick test_interleaved_gate_blocks_cancellation;
    tc "rotation merging" `Quick test_rotation_merging;
    tc "identity dropped" `Quick test_identity_dropped;
    tc "cascading cancellation" `Quick test_cascade;
    tc "barrier blocks" `Quick test_barrier_blocks;
    tc "measure blocks" `Quick test_measure_blocks;
    tc "swap/cnot pattern" `Quick test_swap_cnot_pattern;
    tc "preserves unitary (random)" `Quick test_preserves_unitary;
    tc "idempotent" `Quick test_idempotent;
    tc "removed count" `Quick test_removed_count;
    tc "post-routing compliance" `Quick test_compliance_preserved_after_routing;
  ]
