(* Flexibility across coupling topologies (paper objective 1,
   Section III-B): route the same workload onto every device in the zoo
   and see how topology drives SWAP overhead.

   Run with:  dune exec examples/device_survey.exe *)

module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre.Mapping

let () =
  let n = 8 in
  let workloads =
    [
      ("qft_8 (dense)", Workloads.Qft.circuit n);
      ("ising_8 (chain)", Workloads.Ising.circuit ~steps:4 n);
      ("bv_7 (star)", Workloads.Bv.circuit ~hidden:0b1011011 (n - 1));
    ]
  in
  let devices =
    [
      ("tokyo/20", Hardware.Devices.ibm_q20_tokyo ());
      ("qx5/16", Hardware.Devices.ibm_qx5 ());
      ("grid 3x3", Hardware.Devices.grid ~rows:3 ~cols:3);
      ("linear/8", Hardware.Devices.linear n);
      ("ring/8", Hardware.Devices.ring n);
      ("star/8", Hardware.Devices.star n);
      ("heavy_hex/3", Hardware.Devices.heavy_hex 3);
      ("complete/8", Hardware.Devices.complete n);
    ]
  in
  Format.printf
    "SWAPs inserted by SABRE for three 8-qubit workloads across devices@.@.";
  Format.printf "%-12s %-5s %-6s" "device" "|V|" "diam";
  List.iter (fun (name, _) -> Format.printf " %-16s" name) workloads;
  Format.printf "@.";
  List.iter
    (fun (dname, device) ->
      Format.printf "%-12s %-5d %-6d" dname (Coupling.n_qubits device)
        (Coupling.diameter device);
      List.iter
        (fun (_, circuit) ->
          let r = Sabre.Compiler.run device circuit in
          let ok =
            match
              Sim.Tracker.check ~coupling:device
                ~initial:(Mapping.l2p_array r.initial_mapping)
                ~final:(Mapping.l2p_array r.final_mapping)
                ~logical:circuit ~physical:r.physical ()
            with
            | Ok () -> ""
            | Error _ -> " !VERIFY"
          in
          Format.printf " %-16s"
            (Printf.sprintf "%d swaps%s" r.stats.n_swaps ok))
        workloads;
      Format.printf "@.")
    devices;
  Format.printf
    "@.Denser coupling (higher degree, smaller diameter) needs fewer \
     SWAPs; the chain workload is free exactly on devices containing a \
     long path; the complete graph never swaps.@."
