test/suite_optimize.ml: Alcotest Hardware Helpers List Printf Quantum Sabre Sim Workloads
