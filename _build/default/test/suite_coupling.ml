module Coupling = Hardware.Coupling
module Devices = Hardware.Devices

let check = Alcotest.check
let tc = Alcotest.test_case

let square () = Coupling.create ~n_qubits:4 [ (0, 1); (1, 3); (3, 2); (2, 0) ]

let test_create_normalises () =
  let g = Coupling.create ~n_qubits:3 [ (2, 0); (1, 2) ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted normalised" [ (0, 2); (1, 2) ] (Coupling.edges g)

let test_create_rejects () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "self loop" true
    (raises (fun () -> Coupling.create ~n_qubits:3 [ (1, 1) ]));
  check Alcotest.bool "out of range" true
    (raises (fun () -> Coupling.create ~n_qubits:3 [ (0, 3) ]));
  check Alcotest.bool "duplicate" true
    (raises (fun () -> Coupling.create ~n_qubits:3 [ (0, 1); (1, 0) ]));
  check Alcotest.bool "empty device" true
    (raises (fun () -> Coupling.create ~n_qubits:0 []))

let test_neighbors_degree () =
  let g = square () in
  check (Alcotest.list Alcotest.int) "neighbors of 0" [ 1; 2 ]
    (Coupling.neighbors g 0);
  check Alcotest.int "degree" 2 (Coupling.degree g 0);
  check Alcotest.bool "connected" true (Coupling.connected g 0 1);
  check Alcotest.bool "symmetric" true (Coupling.connected g 1 0);
  check Alcotest.bool "not connected" false (Coupling.connected g 0 3)

let test_distance_matrix_square () =
  let g = square () in
  let d = Coupling.distance_matrix g in
  check Alcotest.int "self" 0 d.(0).(0);
  check Alcotest.int "adjacent" 1 d.(0).(1);
  check Alcotest.int "across" 2 d.(0).(3);
  (* the paper's Fig. 3(b) device: Q1-Q4 not coupled, distance 2 *)
  check Alcotest.int "diameter" 2 (Coupling.diameter g)

let test_distance_symmetry () =
  let g = Devices.ibm_q20_tokyo () in
  let d = Coupling.distance_matrix g in
  for i = 0 to 19 do
    for j = 0 to 19 do
      check Alcotest.int "symmetric" d.(i).(j) d.(j).(i)
    done
  done

let test_distance_triangle_inequality () =
  let g = Devices.ibm_q20_tokyo () in
  let d = Coupling.distance_matrix g in
  for i = 0 to 19 do
    for j = 0 to 19 do
      for k = 0 to 19 do
        check Alcotest.bool "triangle" true (d.(i).(j) <= d.(i).(k) + d.(k).(j))
      done
    done
  done

let test_distance_linear () =
  let g = Devices.linear 6 in
  let d = Coupling.distance_matrix g in
  check Alcotest.int "ends" 5 d.(0).(5);
  check Alcotest.int "middle" 2 d.(1).(3);
  check Alcotest.int "diameter" 5 (Coupling.diameter g)

let test_connectivity () =
  check Alcotest.bool "linear connected" true
    (Coupling.is_connected_graph (Devices.linear 5));
  let disconnected = Coupling.create ~n_qubits:4 [ (0, 1); (2, 3) ] in
  check Alcotest.bool "two components" false
    (Coupling.is_connected_graph disconnected)

let test_shortest_path () =
  let g = Devices.linear 6 in
  check (Alcotest.list Alcotest.int) "path 0->4" [ 0; 1; 2; 3; 4 ]
    (Coupling.shortest_path g 0 4);
  check (Alcotest.list Alcotest.int) "self" [ 2 ] (Coupling.shortest_path g 2 2);
  let d = Coupling.distance_matrix g in
  (* path length agrees with the matrix *)
  check Alcotest.int "length" (d.(0).(4) + 1)
    (List.length (Coupling.shortest_path g 0 4))

let test_shortest_path_disconnected () =
  let g = Coupling.create ~n_qubits:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "no path" Not_found (fun () ->
      ignore (Coupling.shortest_path g 0 3))

let test_path_is_valid_walk () =
  let g = Devices.ibm_q20_tokyo () in
  let path = Coupling.shortest_path g 0 19 in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      check Alcotest.bool "edge" true (Coupling.connected g a b);
      walk rest
    | _ -> ()
  in
  walk path

let suite =
  [
    tc "create normalises" `Quick test_create_normalises;
    tc "create rejects invalid" `Quick test_create_rejects;
    tc "neighbors/degree" `Quick test_neighbors_degree;
    tc "distances on square" `Quick test_distance_matrix_square;
    tc "distance symmetry (Tokyo)" `Quick test_distance_symmetry;
    tc "triangle inequality (Tokyo)" `Quick test_distance_triangle_inequality;
    tc "distances on a line" `Quick test_distance_linear;
    tc "connectivity" `Quick test_connectivity;
    tc "shortest path" `Quick test_shortest_path;
    tc "shortest path disconnected" `Quick test_shortest_path_disconnected;
    tc "path is a valid walk" `Quick test_path_is_valid_walk;
  ]
