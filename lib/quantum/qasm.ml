exception Parse_error = Qasm_stream.Parse_error

(* ------------------------------------------------------------------ *)
(* Eager reader: drain the incremental frontend                        *)
(* ------------------------------------------------------------------ *)

let of_stream st =
  let gates = ref [] in
  let rec drain () =
    match Qasm_stream.next_event st with
    | None -> ()
    | Some (Qasm_stream.Gate g) ->
      gates := g :: !gates;
      drain ()
    | Some (Qasm_stream.Qreg _ | Qasm_stream.Creg _) -> drain ()
  in
  drain ();
  Circuit.create
    ~n_qubits:(Qasm_stream.n_qubits st)
    ~n_clbits:(max (Qasm_stream.n_clbits st) 1)
    (List.rev !gates)

let of_string src = of_stream (Qasm_stream.of_string src)

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_stream (Qasm_stream.of_channel ic))

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

(* %.17g guarantees float round-tripping (17 significant digits suffice
   to reconstruct any IEEE-754 double exactly) *)
let pp_param ppf v = Format.fprintf ppf "%.17g" v

let pp_gate ppf g =
  let params = function
    | Gate.Rx a | Gate.Ry a | Gate.Rz a | Gate.U1 a -> [ a ]
    | Gate.U2 (a, b) -> [ a; b ]
    | Gate.U3 (a, b, c) -> [ a; b; c ]
    | _ -> []
  in
  match g with
  | Gate.Single (k, q) -> (
    match params k with
    | [] -> Format.fprintf ppf "%s q[%d];" (Gate.single_kind_name k) q
    | ps ->
      Format.fprintf ppf "%s(%a) q[%d];" (Gate.single_kind_name k)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           pp_param)
        ps q)
  | Gate.Cnot (a, b) -> Format.fprintf ppf "cx q[%d],q[%d];" a b
  | Gate.Cz (a, b) -> Format.fprintf ppf "cz q[%d],q[%d];" a b
  | Gate.Swap (a, b) -> Format.fprintf ppf "swap q[%d],q[%d];" a b
  | Gate.Barrier qs ->
    Format.fprintf ppf "barrier %a;"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf q -> Format.fprintf ppf "q[%d]" q))
      qs
  | Gate.Measure (q, c) -> Format.fprintf ppf "measure q[%d] -> c[%d];" q c

let prelude_string ~n_qubits ~n_clbits =
  Printf.sprintf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\ncreg c[%d];\n"
    n_qubits (max n_clbits 1)

let gate_string g = Format.asprintf "%a@." pp_gate g

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (prelude_string ~n_qubits:(Circuit.n_qubits c)
       ~n_clbits:(Circuit.n_clbits c));
  List.iter (fun g -> Buffer.add_string buf (gate_string g)) (Circuit.gates c);
  Buffer.contents buf

let output_prelude oc ~n_qubits ~n_clbits =
  output_string oc (prelude_string ~n_qubits ~n_clbits)

let output_gate oc g = output_string oc (gate_string g)

let to_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_prelude oc ~n_qubits:(Circuit.n_qubits c)
        ~n_clbits:(Circuit.n_clbits c);
      List.iter (output_gate oc) (Circuit.gates c))
