lib/core/compiler.mli: Config Hardware Mapping Quantum Stats
