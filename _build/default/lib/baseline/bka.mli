module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre.Mapping

(** Re-implementation of the paper's Best Known Algorithm (BKA):
    Zulehner, Paler and Wille, "Efficient mapping of quantum circuits to
    the IBM QX architectures", DATE 2018 (paper Section VII).

    The circuit is split into layers of concurrent gates ({!Layering});
    for each layer an A* search over *mappings* finds a SWAP sequence
    making every gate of the layer executable. Search nodes are whole
    mappings; children apply one SWAP incident to a layer qubit; the cost
    function is [g = #swaps] plus the non-admissible distance heuristic
    [h = Σ (D-1)] over the layer's pairs (optionally plus a discounted
    look-ahead term over the next layer, as in the original). The
    per-layer search space grows exponentially with the device size —
    the behaviour Section V-B measures.

    Memory exhaustion is modelled by a node budget: when the total number
    of generated search nodes exceeds it, the run aborts like the paper's
    378 GB server does, reporting the count as a memory proxy. *)

type config = {
  node_budget : int;  (** abort threshold on nodes generated within one layer's search (peak-memory proxy) *)
  lookahead : bool;  (** include the next layer in h (default true) *)
  lookahead_weight : float;  (** discount for the look-ahead term (0.5) *)
}

val default_config : config
(** 2,000,000-node budget (scaled to this container the way the
    paper's 378 GB server bounds the original), look-ahead weight 0.5. *)

type result = {
  physical : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  nodes_generated : int;  (** total A* nodes created (memory proxy) *)
  peak_layer_nodes : int;  (** largest single-layer search *)
}

type failure =
  | Node_budget_exhausted of { layer : int; nodes : int }
      (** the paper's "Out of Memory" row *)

val pp_failure : Format.formatter -> failure -> unit

val run :
  ?config:config -> Coupling.t -> Circuit.t -> (result, failure) Stdlib.result
(** Compile a circuit. The initial mapping is chosen greedily from the
    first gates of the circuit (no global optimisation — the weakness the
    paper's reverse traversal addresses). *)

val initial_mapping : Coupling.t -> Circuit.t -> Mapping.t
(** The greedy beginning-of-circuit placement used by [run]
    (= {!Sabre.Initial_mapping.interaction_greedy}). *)
