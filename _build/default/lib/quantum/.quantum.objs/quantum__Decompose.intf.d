lib/quantum/decompose.mli: Circuit Gate
