module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Qasm = Quantum.Qasm

let check = Alcotest.check
let tc = Alcotest.test_case

let program =
  {|OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
t q[1];
tdg q[2];
barrier q[0],q[1],q[2];
swap q[1],q[2];
measure q[0] -> c[0];
|}

let test_parse_basic () =
  let c = Qasm.of_string program in
  check Alcotest.int "qubits" 3 (Circuit.n_qubits c);
  check Alcotest.int "gates" 8 (Circuit.length c);
  match Circuit.gates c with
  | [ g1; g2; g3; g4; g5; g6; g7; g8 ] ->
    check Alcotest.bool "h" true (Gate.equal g1 (Single (H, 0)));
    check Alcotest.bool "cx" true (Gate.equal g2 (Cnot (0, 1)));
    (match g3 with
    | Gate.Single (Rz a, 2) ->
      check (Alcotest.float 1e-12) "pi/4" (Float.pi /. 4.0) a
    | _ -> Alcotest.fail "expected rz");
    check Alcotest.bool "t" true (Gate.equal g4 (Single (T, 1)));
    check Alcotest.bool "tdg" true (Gate.equal g5 (Single (Tdg, 2)));
    check Alcotest.bool "barrier" true (Gate.equal g6 (Barrier [ 0; 1; 2 ]));
    check Alcotest.bool "swap" true (Gate.equal g7 (Swap (1, 2)));
    check Alcotest.bool "measure" true (Gate.equal g8 (Measure (0, 0)))
  | _ -> Alcotest.fail "wrong gate count"

let test_parameter_expressions () =
  let c =
    Qasm.of_string
      "qreg q[1]; rz(-pi/2) q[0]; rz(2*pi) q[0]; rz(pi+1) q[0]; rz(3^2) q[0]; \
       u3(0.1,-0.2,0.3e1) q[0];"
  in
  match Circuit.gates c with
  | [ Gate.Single (Rz a, _); Single (Rz b, _); Single (Rz d, _);
      Single (Rz e, _); Single (U3 (x, y, z), _) ] ->
    check (Alcotest.float 1e-12) "-pi/2" (-.Float.pi /. 2.0) a;
    check (Alcotest.float 1e-12) "2pi" (2.0 *. Float.pi) b;
    check (Alcotest.float 1e-12) "pi+1" (Float.pi +. 1.0) d;
    check (Alcotest.float 1e-12) "3^2" 9.0 e;
    check (Alcotest.float 1e-12) "u3 theta" 0.1 x;
    check (Alcotest.float 1e-12) "u3 phi" (-0.2) y;
    check (Alcotest.float 1e-12) "u3 lam" 3.0 z
  | _ -> Alcotest.fail "unexpected parse"

let test_broadcast () =
  let c = Qasm.of_string "qreg q[4]; h q;" in
  check Alcotest.int "4 hadamards" 4 (Circuit.length c);
  List.iteri
    (fun i g -> check Alcotest.bool "h qi" true (Gate.equal g (Single (H, i))))
    (Circuit.gates c)

let test_multiple_registers_flattened () =
  let c = Qasm.of_string "qreg a[2]; qreg b[2]; cx a[1],b[0];" in
  check Alcotest.int "4 qubits" 4 (Circuit.n_qubits c);
  check Alcotest.bool "flattened index" true
    (Circuit.equal c (Circuit.create ~n_qubits:4 [ Gate.Cnot (1, 2) ]))

let test_ccx_expanded () =
  let c = Qasm.of_string "qreg q[3]; ccx q[0],q[1],q[2];" in
  check Alcotest.int "toffoli expansion size" 15 (Circuit.length c);
  check Alcotest.bool "no 3q gate left" true
    (List.for_all (fun g -> List.length (Gate.qubits g) <= 2) (Circuit.gates c))

let test_measure_register () =
  let c = Qasm.of_string "qreg q[3]; creg c[3]; measure q -> c;" in
  check Alcotest.int "3 measures" 3 (Circuit.length c)

let test_errors () =
  let fails s =
    match Qasm.of_string s with
    | exception Qasm.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "unknown register" true (fails "qreg q[2]; h r[0];");
  check Alcotest.bool "index out of bounds" true (fails "qreg q[2]; h q[5];");
  check Alcotest.bool "unknown gate" true (fails "qreg q[2]; foo q[0];");
  check Alcotest.bool "missing semicolon" true (fails "qreg q[2]; h q[0]");
  check Alcotest.bool "duplicate register" true (fails "qreg q[2]; qreg q[3];");
  check Alcotest.bool "bad arity" true (fails "qreg q[3]; cx q[0];");
  check Alcotest.bool "unterminated string" true (fails "include \"x;")

let test_error_reports_line () =
  match Qasm.of_string "qreg q[2];\nh q[0];\nfoo q[1];" with
  | exception Qasm.Parse_error { line; column; _ } ->
    check Alcotest.int "line 3" 3 line;
    check Alcotest.int "column 1" 1 column
  | _ -> Alcotest.fail "expected parse error"

(* regression: every error category reports the line:col it occurred on,
   with comments and blank lines counted but not blamed *)
let test_error_lines_across_constructs () =
  let pos_of label s expected_line expected_col =
    match Qasm.of_string s with
    | exception Qasm.Parse_error { line; column; _ } ->
      check Alcotest.int (label ^ " (line)") expected_line line;
      check Alcotest.int (label ^ " (col)") expected_col column
    | _ -> Alcotest.failf "%s: expected parse error" label
  in
  (* unknown gate: blamed on the missing operand after the name *)
  pos_of "error on line 1" "frobnicate;" 1 11;
  (* out-of-bounds index: blamed on the register being indexed *)
  pos_of "out-of-bounds index"
    "qreg q[2];\nh q[5];" 2 3;
  pos_of "unknown register after comment and blank line"
    "qreg q[2];\n// a comment\n\nh r[0];" 4 3;
  (* bad arity: blamed on the gate name *)
  pos_of "bad arity deep in a file"
    "qreg q[3];\nh q[0];\nh q[1];\nh q[2];\ncx q[0];" 5 1;
  (* duplicate register: blamed on the register name *)
  pos_of "duplicate register"
    "qreg q[2];\nqreg q[3];" 2 6

let test_round_trip () =
  let original = Qasm.of_string program in
  let reparsed = Qasm.of_string (Qasm.to_string original) in
  check Alcotest.bool "round trip" true (Circuit.equal original reparsed)

let test_round_trip_generated () =
  List.iter
    (fun c ->
      let reparsed = Qasm.of_string (Qasm.to_string c) in
      check Alcotest.bool "round trip" true (Circuit.equal c reparsed))
    [
      Workloads.Qft.circuit 5;
      Workloads.Ising.circuit ~steps:2 4;
      Workloads.Bv.circuit ~hidden:0b1011 4;
      Workloads.Adder.circuit 2;
    ]

let test_gate_definitions () =
  let src =
    {|qreg q[3];
gate my_entangle a,b { h a; cx a,b; }
gate my_phase(theta) a { rz(theta*2) a; }
my_entangle q[0],q[1];
my_phase(pi/4) q[2];|}
  in
  let c = Qasm.of_string src in
  match Circuit.gates c with
  | [ Gate.Single (H, 0); Gate.Cnot (0, 1); Gate.Single (Rz a, 2) ] ->
    check (Alcotest.float 1e-12) "theta*2" (Float.pi /. 2.0) a
  | _ -> Alcotest.failf "unexpected expansion: %s" (Circuit.to_string c)

let test_gate_definitions_nested () =
  (* a definition may call an earlier definition *)
  let src =
    {|qreg q[2];
gate base a { h a; }
gate outer a,b { base a; cx a,b; base b; }
outer q[0],q[1];|}
  in
  let c = Qasm.of_string src in
  check Alcotest.int "3 gates" 3 (Circuit.length c)

let test_cuccaro_qasm_adds () =
  (* the canonical RevLib-style adder in QASM with MAJ/UMA macros must
     compute 1 + 1 = 2 *)
  let src =
    {|OPENQASM 2.0;
qreg cin[1]; qreg a[2]; qreg b[2]; qreg cout[1];
gate majority x,y,z { cx z,y; cx z,x; ccx x,y,z; }
gate unmaj x,y,z { ccx x,y,z; cx z,x; cx x,y; }
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
cx a[1],cout[0];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];|}
  in
  let c = Qasm.of_string src in
  (* registers flattened: cin=0, a=1,2, b=3,4, cout=5; set a=1, b=1 *)
  let n = Circuit.n_qubits c in
  check Alcotest.int "6 qubits" 6 n;
  let s = Sim.Statevector.of_basis n ((1 lsl 1) lor (1 lsl 3)) in
  Sim.Statevector.apply_circuit s c;
  (* b should now hold 2: bit b1 (index 4) set, b0 (index 3) clear *)
  let expect = 1 lsl 1 lor (1 lsl 4) in
  check Alcotest.bool "1+1=2" true
    (Complex.norm (Sim.Statevector.amplitude s expect) > 0.99)

let test_gate_definition_errors () =
  let fails s =
    match Qasm.of_string s with
    | exception Qasm.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "duplicate definition" true
    (fails "qreg q[1]; gate f a { h a; } gate f a { x a; } f q[0];");
  check Alcotest.bool "wrong arity" true
    (fails "qreg q[2]; gate f a { h a; } f q[0],q[1];");
  check Alcotest.bool "unknown formal" true
    (fails "qreg q[1]; gate f a { h b; } f q[0];");
  check Alcotest.bool "unknown parameter" true
    (fails "qreg q[1]; gate f a { rz(theta) a; } f q[0];");
  check Alcotest.bool "unterminated body" true
    (fails "qreg q[1]; gate f a { h a;");
  check Alcotest.bool "opaque cannot be applied" true
    (fails "qreg q[1]; opaque magic a; magic q[0];")

let test_file_io () =
  let path = Filename.temp_file "qasm_test" ".qasm" in
  let c = Workloads.Ghz.circuit 4 in
  Qasm.to_file path c;
  let back = Qasm.of_file path in
  Sys.remove path;
  check Alcotest.bool "file round trip" true (Circuit.equal c back)

let suite =
  [
    tc "parse basic program" `Quick test_parse_basic;
    tc "parameter expressions" `Quick test_parameter_expressions;
    tc "register broadcast" `Quick test_broadcast;
    tc "multiple registers flattened" `Quick test_multiple_registers_flattened;
    tc "ccx expanded" `Quick test_ccx_expanded;
    tc "measure whole register" `Quick test_measure_register;
    tc "errors rejected" `Quick test_errors;
    tc "error reports line" `Quick test_error_reports_line;
    tc "error lines across constructs" `Quick test_error_lines_across_constructs;
    tc "round trip" `Quick test_round_trip;
    tc "round trip generated circuits" `Quick test_round_trip_generated;
    tc "gate definitions" `Quick test_gate_definitions;
    tc "nested gate definitions" `Quick test_gate_definitions_nested;
    tc "cuccaro adder via macros" `Quick test_cuccaro_qasm_adds;
    tc "gate definition errors" `Quick test_gate_definition_errors;
    tc "file io" `Quick test_file_io;
  ]
