examples/noise_aware.ml: Format Hardware List Sabre Sim Workloads
