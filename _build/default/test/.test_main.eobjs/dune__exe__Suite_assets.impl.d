test/suite_assets.ml: Alcotest Complex Filename Hardware Helpers List Printf Quantum Sabre Sim
