// 3-bit quantum phase estimation of a T gate (phase 1/8), using a
// user-defined controlled-phase macro and an inverse-QFT readout.
OPENQASM 2.0;
include "qelib1.inc";
gate cphase(theta) a,b { rz(theta/2) a; rz(theta/2) b; cx a,b; rz(-theta/2) b; cx a,b; }
qreg q[3];
qreg eigen[1];
creg c[3];
x eigen[0];
h q[0];
h q[1];
h q[2];
// controlled-U^{2^k}: U = T = phase pi/4
cphase(pi/4) q[0],eigen[0];
cphase(pi/2) q[1],eigen[0];
cphase(pi) q[2],eigen[0];
// inverse QFT on the counting register
h q[2];
cphase(-pi/2) q[1],q[2];
h q[1];
cphase(-pi/4) q[0],q[2];
cphase(-pi/2) q[0],q[1];
h q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
