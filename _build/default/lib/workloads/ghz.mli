module Circuit = Quantum.Circuit

(** GHZ-state preparation: H on qubit 0 followed by a CNOT chain.
    Interaction graph is a path — routes with zero SWAPs whenever the
    device contains a Hamiltonian-ish path, a handy optimality oracle for
    tests. *)

val circuit : int -> Circuit.t
(** [circuit n]: H(0); CX(0,1); CX(1,2); …; CX(n−2,n−1). *)

val star : int -> Circuit.t
(** [star n]: H(0) then CX(0,i) for all i — the all-from-root variant
    whose interaction graph is a star, stressing routers on low-degree
    devices. *)
