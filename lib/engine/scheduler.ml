type domain_stats = { domain : int; jobs_run : int; wall_s : float }
type 'a report = { results : 'a array; stats : domain_stats array }

let wall = Unix.gettimeofday
let default_chunk ~n_jobs ~domains = max 1 (n_jobs / (8 * max 1 domains))

(* Keep the failure with the lowest job index: the exception a
   sequential left-to-right loop would have raised first among the jobs
   that actually ran. *)
let record_failure failure stop i e =
  let rec keep_min () =
    let cur = Atomic.get failure in
    let better = match cur with None -> true | Some (j, _) -> i < j in
    if better && not (Atomic.compare_and_set failure cur (Some (i, e))) then
      keep_min ()
  in
  keep_min ();
  Atomic.set stop true

let run_report ?chunk ~domains jobs =
  let n = Array.length jobs in
  if n = 0 then { results = [||]; stats = [||] }
  else begin
    let domains = max 1 (min domains n) in
    let chunk =
      max 1
        (match chunk with
        | Some c -> c
        | None -> default_chunk ~n_jobs:n ~domains)
    in
    if domains = 1 then begin
      let t0 = wall () in
      let results = Array.map (fun f -> f ()) jobs in
      {
        results;
        stats = [| { domain = 0; jobs_run = n; wall_s = wall () -. t0 } |];
      }
    end
    else begin
      let next = Atomic.make 0 in
      let stop = Atomic.make false in
      let failure = Atomic.make None in
      let results = Array.make n None in
      let stats =
        Array.init domains (fun k -> { domain = k; jobs_run = 0; wall_s = 0.0 })
      in
      (* Each result slot is written by exactly one claimant (indices are
         handed out once by the atomic counter), so the plain arrays need
         no further synchronisation; the Domain.join below publishes the
         writes to the caller. *)
      let worker k () =
        let t0 = wall () in
        let ran = ref 0 in
        let continue = ref true in
        while !continue && not (Atomic.get stop) do
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= n then continue := false
          else begin
            let hi = min n (lo + chunk) in
            let i = ref lo in
            while !i < hi && not (Atomic.get stop) do
              (match jobs.(!i) () with
              | r ->
                results.(!i) <- Some r;
                incr ran
              | exception e -> record_failure failure stop !i e);
              incr i
            done
          end
        done;
        stats.(k) <- { domain = k; jobs_run = !ran; wall_s = wall () -. t0 }
      in
      let spawned =
        List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      worker 0 ();
      List.iter
        (fun d ->
          (* workers trap job exceptions themselves; a join failure would
             be a crash outside any job, surfaced only if nothing else
             already failed *)
          match Domain.join d with
          | () -> ()
          | exception e -> record_failure failure stop max_int e)
        spawned;
      (match Atomic.get failure with Some (_, e) -> raise e | None -> ());
      let results =
        Array.map
          (function Some r -> r | None -> assert false (* no failure *))
          results
      in
      { results; stats }
    end
  end

let run ?chunk ~domains jobs = (run_report ?chunk ~domains jobs).results

(* Cancellable variant: [cancelled i] is consulted when a worker claims
   job [i] — a [true] answer skips the thunk entirely and leaves [None]
   in its slot. Cancellation of a job already running is the job's own
   business (the routing-pass progress hook); this layer only stops
   work from starting. Defaults to chunk 1: racing jobs have wildly
   unequal lengths, so per-job claiming is what lets a short entry free
   its domain for a long one. *)
let run_cancellable ?(chunk = 1) ~cancelled ~domains jobs =
  let n = Array.length jobs in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    let chunk = max 1 chunk in
    if domains = 1 then
      Array.mapi
        (fun i job -> if cancelled i then None else Some (job ()))
        jobs
    else begin
      let next = Atomic.make 0 in
      let stop = Atomic.make false in
      let failure = Atomic.make None in
      let results = Array.make n None in
      let worker () =
        let continue = ref true in
        while !continue && not (Atomic.get stop) do
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= n then continue := false
          else begin
            let hi = min n (lo + chunk) in
            let i = ref lo in
            while !i < hi && not (Atomic.get stop) do
              (if not (cancelled !i) then
                 match jobs.(!i) () with
                 | r -> results.(!i) <- Some r
                 | exception e -> record_failure failure stop !i e);
              incr i
            done
          end
        done
      in
      let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter
        (fun d ->
          match Domain.join d with
          | () -> ()
          | exception e -> record_failure failure stop max_int e)
        spawned;
      (match Atomic.get failure with Some (_, e) -> raise e | None -> ());
      results
    end
  end
