lib/core/config.mli: Format
