module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling

let trivial coupling circuit =
  Mapping.identity
    ~n_logical:(Circuit.n_qubits circuit)
    ~n_physical:(Coupling.n_qubits coupling)

let random ~state coupling circuit =
  Mapping.random ~state
    ~n_logical:(Circuit.n_qubits circuit)
    ~n_physical:(Coupling.n_qubits coupling)

let degree_matching coupling circuit =
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  (* interaction degree: number of distinct partners of each logical qubit *)
  let partners = Array.make n_logical [] in
  List.iter
    (fun (a, b) ->
      if not (List.mem b partners.(a)) then partners.(a) <- b :: partners.(a);
      if not (List.mem a partners.(b)) then partners.(b) <- a :: partners.(b))
    (Circuit.two_qubit_interactions circuit);
  let by_rank degree count =
    List.init count Fun.id
    |> List.sort (fun a b ->
           match compare (degree b) (degree a) with
           | 0 -> compare a b
           | c -> c)
  in
  let logical_ranked = by_rank (fun q -> List.length partners.(q)) n_logical in
  let physical_ranked = by_rank (Coupling.degree coupling) n_physical in
  let l2p = Array.make n_logical (-1) in
  List.iteri
    (fun rank q ->
      l2p.(q) <- List.nth physical_ranked rank)
    logical_ranked;
  Mapping.of_array ~n_physical l2p

let interaction_greedy coupling circuit =
  let n_logical = Circuit.n_qubits circuit in
  let n_physical = Coupling.n_qubits coupling in
  if n_logical > n_physical then
    invalid_arg "Initial_mapping.interaction_greedy: circuit wider than device";
  let dist = Coupling.distance_matrix coupling in
  let l2p = Array.make n_logical (-1) in
  let taken = Array.make n_physical false in
  let free_degree p =
    List.length
      (List.filter (fun p' -> not taken.(p')) (Coupling.neighbors coupling p))
  in
  let place q p =
    l2p.(q) <- p;
    taken.(p) <- true
  in
  let nearest_free_to p0 =
    let best = ref (-1) and best_d = ref max_int in
    for p = 0 to n_physical - 1 do
      if (not taken.(p)) && dist.(p0).(p) < !best_d then begin
        best := p;
        best_d := dist.(p0).(p)
      end
    done;
    !best
  in
  List.iter
    (fun (q1, q2) ->
      match (l2p.(q1) >= 0, l2p.(q2) >= 0) with
      | true, true -> ()
      | true, false ->
        let p = nearest_free_to l2p.(q1) in
        if p >= 0 then place q2 p
      | false, true ->
        let p = nearest_free_to l2p.(q2) in
        if p >= 0 then place q1 p
      | false, false ->
        (* pick the free edge whose endpoints keep the most free
           neighbours, so later gates still find room *)
        let best = ref None and best_score = ref (-1) in
        List.iter
          (fun (a, b) ->
            if (not taken.(a)) && not taken.(b) then begin
              let score = free_degree a + free_degree b in
              if score > !best_score then begin
                best := Some (a, b);
                best_score := score
              end
            end)
          (Coupling.edges coupling);
        (match !best with
        | Some (a, b) ->
          place q1 a;
          place q2 b
        | None -> ()))
    (Circuit.two_qubit_interactions circuit);
  (* leftovers: first free physical qubit *)
  let next_free = ref 0 in
  Array.iteri
    (fun q p ->
      if p < 0 then begin
        while taken.(!next_free) do
          incr next_free
        done;
        place q !next_free
      end)
    l2p;
  Mapping.of_array ~n_physical l2p
