(** The SABRE bidirectional router as a {!Router.S}.

    One trial = [config.traversals] alternating forward/backward
    traversals of {!Sabre_core.Routing_pass} (paper Section IV-C2); the
    final mapping of each traversal seeds the next, and the last
    traversal is always forward. Requires {!Dag_pass} to have run. *)

include Router.S

val router : Router.t
