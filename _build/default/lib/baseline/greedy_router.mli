module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre.Mapping

(** Greedy shortest-path router in the spirit of Siraichi et al.'s
    heuristic (paper Section VII): gates are routed one at a time in
    program order; when a two-qubit gate is blocked, one operand is
    swapped along a shortest path towards the other until they are
    adjacent. No look-ahead, no initial-mapping optimisation — the fast
    but low-quality baseline. *)

type result = {
  physical : Circuit.t;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
}

val run : ?initial:Mapping.t -> Coupling.t -> Circuit.t -> result
(** [run coupling circuit] routes with the identity initial mapping
    unless [initial] is given. Raises [Invalid_argument] on a circuit
    wider than the device or a disconnected graph. *)
