module Decompose = Quantum.Decompose

type level = Keep | Swaps | All

let name = "decompose"

let pass ?(level = Keep) () =
  Pass.make name (fun ~instrument (ctx : Context.t) ->
      let before = Decompose.elementary_gate_count ctx.circuit in
      let circuit =
        match level with
        | Keep -> ctx.circuit
        | Swaps -> Decompose.expand_swaps ctx.circuit
        | All -> Decompose.expand_all ctx.circuit
      in
      let ctx = { ctx with circuit } in
      let ctx = Pass.count instrument ~pass:name ctx "gates_in" before in
      Pass.count instrument ~pass:name ctx "gates_out"
        (Decompose.elementary_gate_count circuit))
