module Config = Sabre_core.Config
module Coupling = Hardware.Coupling
module Routing = Sabre_core.Routing_pass_ref

(* The pre-flat-core SABRE implementation behind the Router interface.

   Registered (by {!Check.Differential.ensure_registered}) for one
   release cycle so every differential-fuzz run cross-checks the
   flat-core router against the old list-based one; remove together
   with {!Sabre_core.Routing_pass_ref} once the cycle ends. *)

let name = "sabre-ref"
let deterministic = false
let derives_seed = false

let dag_exn = function
  | Some d -> d
  | None ->
    raise (Router.Route_failed "sabre-ref router: Dag_pass must run first")

(* The reference pass predates the flat metric: rebuild the square
   matrix it expects from the context's row-major array, once per call. *)
let square_dist (ctx : Context.t) =
  let n = Coupling.n_qubits ctx.coupling in
  Array.init n (fun i -> Array.sub ctx.dist (i * n) n)

let route (ctx : Context.t) ~initial =
  let forward = dag_exn ctx.dag_forward in
  let total = ctx.config.Config.traversals in
  let backward = if total > 1 then dag_exn ctx.dag_backward else forward in
  let dist = square_dist ctx in
  let rec go i mapping first steps fallbacks =
    let oriented = if i mod 2 = 1 then forward else backward in
    let r = Routing.run ~dist ctx.config ctx.coupling oriented mapping in
    let first = match first with None -> Some r.Routing.n_swaps | s -> s in
    let steps = steps + r.Routing.search_steps in
    let fallbacks = fallbacks + r.Routing.fallback_swaps in
    if i = total then
      {
        Router.physical = r.Routing.physical;
        trial_initial = mapping;
        final_mapping = r.Routing.final_mapping;
        n_swaps = r.Routing.n_swaps;
        first_swaps = Option.get first;
        search_steps = steps;
        fallback_swaps = fallbacks;
        traversals = total;
        (* the reference pass predates scorer accounting *)
        scoring = Sabre_core.Stats.scoring_zero;
      }
    else go (i + 1) r.Routing.final_mapping first steps fallbacks
  in
  go 1 initial None 0 0

let router : Router.t =
  (module struct
    let name = name
    let deterministic = deterministic
    let derives_seed = derives_seed
    let route = route
  end)
