module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Depth = Quantum.Depth

type t = {
  coupling : Coupling.t;
  single_qubit_error : float array;
  two_qubit_error : float array array;
  readout_error : float array;
  t1_us : float array;
  t2_us : float array;
  gate_time_1q_ns : float;
  gate_time_2q_ns : float;
}

(* IBM Q20 Tokyo averages, paper Fig. 2 *)
let tokyo_1q = 4.43e-3
let tokyo_2q = 3.00e-2
let tokyo_readout = 8.74e-2
let tokyo_t1 = 87.29
let tokyo_t2 = 54.43

let uniform ?(single_qubit_error = tokyo_1q) ?(two_qubit_error = tokyo_2q)
    ?(readout_error = tokyo_readout) ?(t1_us = tokyo_t1) ?(t2_us = tokyo_t2)
    ?(gate_time_1q_ns = 50.0) ?(gate_time_2q_ns = 300.0) coupling =
  let n = Coupling.n_qubits coupling in
  let two = Array.make_matrix n n 0.0 in
  List.iter
    (fun (a, b) ->
      two.(a).(b) <- two_qubit_error;
      two.(b).(a) <- two_qubit_error)
    (Coupling.edges coupling);
  {
    coupling;
    single_qubit_error = Array.make n single_qubit_error;
    two_qubit_error = two;
    readout_error = Array.make n readout_error;
    t1_us = Array.make n t1_us;
    t2_us = Array.make n t2_us;
    gate_time_1q_ns;
    gate_time_2q_ns;
  }

let randomized ?(seed = 1) ?(spread = 0.5) coupling =
  let rng = Random.State.make [| seed; Coupling.n_qubits coupling |] in
  (* log-normal jitter: rate * exp(spread * gaussian), clamped to (0, 0.5) *)
  let gaussian () =
    let u1 = Random.State.float rng 1.0 +. 1e-12 in
    let u2 = Random.State.float rng 1.0 in
    Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)
  in
  let jitter rate = Float.min 0.5 (rate *. Float.exp (spread *. gaussian ())) in
  let base = uniform coupling in
  let n = Coupling.n_qubits coupling in
  for q = 0 to n - 1 do
    base.single_qubit_error.(q) <- jitter tokyo_1q;
    base.readout_error.(q) <- jitter tokyo_readout;
    base.t1_us.(q) <- tokyo_t1 *. Float.exp (spread *. gaussian ());
    base.t2_us.(q) <- tokyo_t2 *. Float.exp (spread *. gaussian ())
  done;
  List.iter
    (fun (a, b) ->
      let e = jitter tokyo_2q in
      base.two_qubit_error.(a).(b) <- e;
      base.two_qubit_error.(b).(a) <- e)
    (Coupling.edges coupling);
  base

let edge_error t a b =
  if not (Coupling.connected t.coupling a b) then
    invalid_arg (Printf.sprintf "Noise.edge_error: (%d,%d) not coupled" a b);
  t.two_qubit_error.(a).(b)

let infinity_weight = 1e30

(* Weighted Floyd–Warshall over per-edge weights. *)
let all_pairs_shortest weights coupling =
  let n = Coupling.n_qubits coupling in
  let d = Array.make_matrix n n infinity_weight in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.0
  done;
  List.iter
    (fun ((a, b) as e) ->
      let w = weights e in
      d.(a).(b) <- w;
      d.(b).(a) <- w)
    (Coupling.edges coupling);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if dik < infinity_weight then
        for j = 0 to n - 1 do
          let through = dik +. d.(k).(j) in
          if through < d.(i).(j) then d.(i).(j) <- through
        done
    done
  done;
  d

(* A SWAP on edge e is three CNOTs, so its -log success is -3 log(1-e). *)
let edge_nll t (a, b) =
  -3.0 *. Float.log (Float.max 1e-9 (1.0 -. t.two_qubit_error.(a).(b)))

let swap_reliability_distance t = all_pairs_shortest (edge_nll t) t.coupling

let mixed_routing_distance ?(lambda = 0.5) t =
  if lambda < 0.0 || lambda > 1.0 then
    invalid_arg "Noise.mixed_routing_distance: lambda must be in [0, 1]";
  let nll = edge_nll t in
  let edges = Coupling.edges t.coupling in
  let avg =
    List.fold_left (fun acc e -> acc +. nll e) 0.0 edges
    /. float_of_int (max 1 (List.length edges))
  in
  all_pairs_shortest
    (fun e -> (1.0 -. lambda) +. (lambda *. nll e /. Float.max 1e-12 avg))
    t.coupling

let gate_success t = function
  | Gate.Single (_, q) -> 1.0 -. t.single_qubit_error.(q)
  | Gate.Cnot (a, b) | Gate.Cz (a, b) ->
    1.0 -. t.two_qubit_error.(a).(b)
  | Gate.Swap (a, b) ->
    let s = 1.0 -. t.two_qubit_error.(a).(b) in
    s *. s *. s
  | Gate.Barrier _ -> 1.0
  | Gate.Measure (q, _) -> 1.0 -. t.readout_error.(q)

let duration_weight t g =
  match g with
  | Gate.Single _ -> int_of_float t.gate_time_1q_ns
  | Gate.Cnot _ | Gate.Cz _ -> int_of_float t.gate_time_2q_ns
  | Gate.Swap _ -> 3 * int_of_float t.gate_time_2q_ns
  | Gate.Measure _ -> int_of_float t.gate_time_2q_ns
  | Gate.Barrier _ -> 0

let expected_duration_ns t circuit =
  float_of_int (Depth.asap ~weight:(duration_weight t) circuit).Depth.depth

let circuit_success_probability t circuit =
  let gates = Circuit.gates circuit in
  let gate_product =
    List.fold_left (fun acc g -> acc *. gate_success t g) 1.0 gates
  in
  (* decoherence: every used qubit idles/computes for the whole circuit
     duration; first-order exponential decay against T1 and T2 *)
  let duration_us = expected_duration_ns t circuit /. 1000.0 in
  let decoherence =
    List.fold_left
      (fun acc q ->
        acc
        *. Float.exp
             (-.(duration_us /. t.t1_us.(q)) -. (duration_us /. t.t2_us.(q))))
      1.0
      (Circuit.used_qubits circuit)
  in
  gate_product *. decoherence

let pp ppf t =
  let stats a =
    let mn = Array.fold_left Float.min a.(0) a
    and mx = Array.fold_left Float.max a.(0) a in
    let avg = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
    (mn, avg, mx)
  in
  let e2 =
    List.map (fun (a, b) -> t.two_qubit_error.(a).(b)) (Coupling.edges t.coupling)
  in
  let e2_arr = Array.of_list e2 in
  let mn1, av1, mx1 = stats t.single_qubit_error in
  let mn2, av2, mx2 = stats e2_arr in
  Format.fprintf ppf
    "@[<v>noise model over %d qubits / %d couplers@,\
     1q error : min %.2e avg %.2e max %.2e@,\
     2q error : min %.2e avg %.2e max %.2e@,\
     readout  : avg %.2e;  T1 avg %.1fus, T2 avg %.1fus@]"
    (Coupling.n_qubits t.coupling)
    (Coupling.n_edges t.coupling)
    mn1 av1 mx1 mn2 av2 mx2
    (let _, a, _ = stats t.readout_error in a)
    (let _, a, _ = stats t.t1_us in a)
    (let _, a, _ = stats t.t2_us in a)
