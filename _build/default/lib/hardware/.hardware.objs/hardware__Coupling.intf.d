lib/hardware/coupling.mli: Format
