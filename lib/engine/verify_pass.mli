(** Semantic verification of the routed circuit.

    Strict mode (the default) uses the permutation tracker: the physical
    circuit must be coupling-compliant and, gate for gate, a remapping
    of the logical circuit under the evolving π. When the config is
    commutation-aware, reordering of commuting gates is legal, so the
    pass instead checks compliance plus that the unrouted circuit is a
    linearisation of the commuting DAG.

    Sets [verified = Some true] on success. *)

exception Verify_failed of string

val check : Context.t -> Context.routed -> unit
(** Run the appropriate check (strict tracker, or compliance +
    commuting linearisation) and raise {!Verify_failed} on any
    violation. Used by the pass below and by {!Routing_pass} to verify
    results {e before} inserting them into the compile cache
    (verify-on-insert: a hit never pays verification again). *)

val pass : Pass.t
(** Skips (counter [verify.cached]) when the context is already
    verified — i.e. the result came from, or was just verified into,
    the compile cache. *)
