lib/quantum/qasm.ml: Buffer Circuit Decompose Float Format Gate Hashtbl List Printf String
