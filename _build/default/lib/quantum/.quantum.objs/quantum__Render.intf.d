lib/quantum/render.mli: Circuit Dag
