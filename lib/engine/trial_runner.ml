type mode = Sequential | Domains of int

let default_domains () = max 1 (Domain.recommended_domain_count ())

let map ~mode jobs =
  match mode with
  | Sequential -> Array.map (fun f -> f ()) jobs
  | Domains d -> Scheduler.run ~domains:d jobs

let best ~better = function
  | [||] -> invalid_arg "Trial_runner.best: no trials"
  | results ->
    (* left-to-right, strict improvement only: ties keep the earliest
       candidate, so sequential and parallel runs pick the same winner *)
    let acc = ref results.(0) in
    for i = 1 to Array.length results - 1 do
      if better results.(i) !acc then acc := results.(i)
    done;
    !acc
