(* Stack-based peephole pass: the output is kept as a growable array of
   gate slots plus, per qubit, a stack of indices of the live gates on
   that qubit. Each incoming gate is matched against the top of its
   qubit stack(s); cancellations pop the stacks, so cascades (A B B† A†)
   resolve in a single sweep. *)

let two_pi = 2.0 *. Float.pi
let angle_is_zero a = Float.abs (Float.rem a two_pi) < 1e-12

(* merge two single-qubit kinds applied in sequence (first [a], then [b]):
   [Cancel] = identity, [Replace k] = single gate k, [Keep] = no rule *)
type merge = Cancel | Replace of Gate.single_kind | Keep

let merge_singles a b =
  let open Gate in
  match (a, b) with
  | I, _ -> Replace b
  | _, I -> Replace a
  | H, H | X, X | Y, Y | Z, Z -> Cancel
  | S, Sdg | Sdg, S | T, Tdg | Tdg, T -> Cancel
  | Rz x, Rz y ->
    if angle_is_zero (x +. y) then Cancel else Replace (Rz (x +. y))
  | Rx x, Rx y ->
    if angle_is_zero (x +. y) then Cancel else Replace (Rx (x +. y))
  | Ry x, Ry y ->
    if angle_is_zero (x +. y) then Cancel else Replace (Ry (x +. y))
  | U1 x, U1 y ->
    if angle_is_zero (x +. y) then Cancel else Replace (U1 (x +. y))
  | _ -> Keep

(* do g1 then g2 cancel exactly? (two-qubit gates) *)
let two_qubit_cancels g1 g2 =
  match (g1, g2) with
  | Gate.Cnot (a, b), Gate.Cnot (a', b') -> a = a' && b = b'
  | Gate.Cz (a, b), Gate.Cz (a', b') | Gate.Swap (a, b), Gate.Swap (a', b') ->
    (* symmetric gates cancel in either orientation *)
    (a = a' && b = b') || (a = b' && b = a')
  | _ -> false

type state = {
  mutable slots : Gate.t option array;
  mutable len : int;
  stacks : int list array;  (* per qubit: indices of live gates, top first *)
}

let push_slot st gate =
  if st.len = Array.length st.slots then begin
    let bigger = Array.make (max 16 (2 * st.len)) None in
    Array.blit st.slots 0 bigger 0 st.len;
    st.slots <- bigger
  end;
  st.slots.(st.len) <- Some gate;
  List.iter
    (fun q -> st.stacks.(q) <- st.len :: st.stacks.(q))
    (Gate.qubits gate);
  st.len <- st.len + 1

let pop_gate st idx =
  match st.slots.(idx) with
  | None -> ()
  | Some gate ->
    st.slots.(idx) <- None;
    List.iter
      (fun q ->
        match st.stacks.(q) with
        | top :: rest when top = idx -> st.stacks.(q) <- rest
        | _ ->
          (* only ever called on gates that are on top of all their
             stacks; anything else is a pass bug *)
          assert false)
      (Gate.qubits gate)

let top_gate st q =
  match st.stacks.(q) with
  | [] -> None
  | idx :: _ -> Option.map (fun g -> (idx, g)) st.slots.(idx)

let add_gate st gate =
  match gate with
  | Gate.Barrier _ | Gate.Measure _ -> push_slot st gate
  | Gate.Single (kind, q) when kind = Gate.I ->
    ignore q (* identity: drop on sight *)
  | Gate.Single (kind, q) -> (
    match top_gate st q with
    | Some (idx, Gate.Single (prev, _)) -> (
      match merge_singles prev kind with
      | Cancel -> pop_gate st idx
      | Replace merged ->
        pop_gate st idx;
        push_slot st (Gate.Single (merged, q))
      | Keep -> push_slot st gate)
    | _ -> push_slot st gate)
  | Gate.Cnot (a, b) | Gate.Cz (a, b) | Gate.Swap (a, b) -> (
    match (top_gate st a, top_gate st b) with
    | Some (ia, prev), Some (ib, _) when ia = ib && two_qubit_cancels prev gate
      -> pop_gate st ia
    | _ -> push_slot st gate)

let cancel_pairs_once c =
  let st =
    {
      slots = Array.make (max 16 (Circuit.length c)) None;
      len = 0;
      stacks = Array.make (Circuit.n_qubits c) [];
    }
  in
  List.iter (add_gate st) (Circuit.gates c);
  let survivors = ref [] in
  for i = st.len - 1 downto 0 do
    match st.slots.(i) with
    | Some g -> survivors := g :: !survivors
    | None -> ()
  done;
  Circuit.create ~n_qubits:(Circuit.n_qubits c) ~n_clbits:(Circuit.n_clbits c)
    !survivors

let rec run c =
  let c' = cancel_pairs_once c in
  if Circuit.length c' = Circuit.length c then c' else run c'

let removed_gate_count c = Circuit.length c - Circuit.length (run c)
