examples/tradeoff_explorer.ml: Format Hardware List Quantum Sabre Workloads
