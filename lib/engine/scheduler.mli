(** Multicore work scheduler: a Domain pool over a shared atomic queue.

    The unit of work is an array of independent thunks. Workers claim
    contiguous chunks of indices from a shared [Atomic.t] counter
    (work-stealing semantics: a fast domain keeps claiming while a slow
    one is stuck on a long job), so the load balances itself — unlike
    the round-robin striping this module replaced, where one slow job
    stalled every job striped after it on the same domain.

    Guarantees:
    - results are delivered {e in input order}, whatever the claim
      interleaving was — callers observe exactly what a sequential loop
      would have produced (given thunks that are themselves
      deterministic and independent);
    - every thunk runs at most once;
    - if thunks raise, the exception of the {e lowest-indexed} failed
      job is re-raised after all domains have been joined — the same
      exception a sequential left-to-right loop would have surfaced
      first (jobs claimed after a failure observed in the same domain
      are skipped; other domains may still run theirs);
    - per-domain execution counters are available for instrumentation.

    Thunks must be safe to run on any domain and must not share mutable
    state with each other. *)

type domain_stats = {
  domain : int;  (** worker index, [0 .. domains-1] *)
  jobs_run : int;  (** thunks this worker executed *)
  wall_s : float;  (** wall-clock seconds this worker was alive *)
}

type 'a report = {
  results : 'a array;  (** in input order *)
  stats : domain_stats array;  (** one entry per worker, by index *)
}

val default_chunk : n_jobs:int -> domains:int -> int
(** The chunk size [run] uses when none is given: jobs claimed per
    counter fetch, sized so each domain expects ~8 claims
    ([max 1 (n_jobs / (8 * domains))]) — large enough to keep counter
    contention negligible, small enough to still steal from a slow
    domain's tail. *)

val run :
  ?chunk:int -> domains:int -> (unit -> 'a) array -> 'a array
(** [run ~domains jobs] evaluates every thunk and returns the results
    in input order. [domains] is clamped to [1 .. Array.length jobs];
    with a single domain (or ≤ 1 job) everything runs on the calling
    domain with no spawning. [chunk] overrides {!default_chunk} and is
    clamped to at least 1. Exceptions propagate as documented above. *)

val run_report :
  ?chunk:int -> domains:int -> (unit -> 'a) array -> 'a report
(** Like {!run}, also returning per-domain counters. When the pool ran
    on the calling domain only, [stats] has a single entry. *)

val run_cancellable :
  ?chunk:int ->
  cancelled:(int -> bool) ->
  domains:int ->
  (unit -> 'a) array ->
  'a option array
(** {!run} with per-job cancellation: [cancelled i] is consulted when a
    worker claims job [i]; [true] skips the thunk and leaves [None] in
    slot [i]. A job already running is not interrupted here — in-flight
    cancellation belongs to the job itself (see {!Race.hook}); this
    check only keeps doomed work from starting. [chunk] defaults to 1
    (racing jobs have unequal lengths, so per-job claiming lets a short
    entry's domain steal the next job instead of sitting on a stale
    chunk). [cancelled] must be domain-safe. Results keep input order;
    exceptions propagate as in {!run} (lowest failed index). *)
