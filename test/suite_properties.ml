(* Property-based tests (qcheck) over random circuits and devices.

   Generators (with shrinking) live in [Check.Generators]; the routing
   correctness contract is [Check.Oracle]; the cross-router differential
   and metamorphic checks are [Check.Differential]. This suite wires
   them into qcheck properties so every registered router is fuzzed on
   every run — the same machinery `sabre_fuzz` drives for longer
   campaigns. *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Generators = Check.Generators
module Differential = Check.Differential

let circuit_arb = Generators.circuit_arb ()
let instance_arb = Generators.instance_arb ()

(* ------------------------------------------------------------------ *)
(* Differential conformance: every registered router, same instances   *)
(* ------------------------------------------------------------------ *)

let prop_all_routers_conform =
  QCheck.Test.make ~count:50
    ~name:"every registered router passes the conformance oracle"
    instance_arb (fun i ->
      let reports =
        Differential.check_all ~config:i.Generators.config
          i.Generators.coupling i.Generators.circuit ()
      in
      List.for_all
        (fun (r : Differential.report) ->
          match r.verdict with
          | Differential.Pass | Differential.Skip _ -> true
          | Differential.Fail f ->
            QCheck.Test.fail_reportf "router %s: %a" r.router
              Check.Oracle.pp_failure f)
        reports)

let prop_seed_determinism =
  QCheck.Test.make ~count:25 ~name:"sabre is deterministic at a fixed seed"
    instance_arb (fun i ->
      match
        Differential.determinism ~config:i.Generators.config
          i.Generators.coupling i.Generators.circuit
          Engine.Sabre_router.router
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "%s" msg)

let perm_gen n rng =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let relabel_arb =
  QCheck.make
    QCheck.Gen.(
      Generators.instance () >>= fun i ->
      int_bound 1_000_000 >|= fun pseed -> (i, pseed))
    ~print:(fun (i, pseed) ->
      Printf.sprintf "perm_seed=%d\n%s" pseed (Generators.print_instance i))

let prop_relabel_invariance =
  Differential.ensure_registered ();
  QCheck.Test.make ~count:30
    ~name:"SWAP count invariant under logical-qubit relabelling"
    relabel_arb (fun (i, pseed) ->
      let n = Circuit.n_qubits i.Generators.circuit in
      let perm = perm_gen n (Random.State.make [| pseed |]) in
      List.for_all
        (fun name ->
          let router = Option.get (Engine.Router.find name) in
          match
            Differential.relabel_invariance ~config:i.Generators.config ~perm
              i.Generators.coupling i.Generators.circuit router
          with
          | Ok () -> true
          | Error msg -> QCheck.Test.fail_reportf "router %s: %s" name msg)
        [ "sabre"; "greedy" ])

let prop_commuting_conformance =
  QCheck.Test.make ~count:25
    ~name:"commutation-aware routing still equivalent"
    instance_arb (fun i ->
      match
        Differential.commuting_conformance ~config:i.Generators.config
          i.Generators.coupling i.Generators.circuit
          Engine.Sabre_router.router
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "%s" msg)

let prop_flatcore_equivalence =
  QCheck.Test.make ~count:40
    ~name:"flat-core sabre matches the frozen sabre-ref reference"
    instance_arb (fun i ->
      match
        Differential.flatcore_equivalence ~config:i.Generators.config
          i.Generators.coupling i.Generators.circuit
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "%s" msg)

(* ------------------------------------------------------------------ *)
(* Delta scoring ≡ full recompute                                      *)
(* ------------------------------------------------------------------ *)

(* Route-level: delta and full-recompute candidate scoring must emit
   byte-identical circuits and mappings (heuristic mode, extended-set
   size/weight, decay parameters all randomised by the generator). *)
let prop_delta_equivalence =
  QCheck.Test.make ~count:40
    ~name:"delta-scored sabre matches full-recompute sabre"
    instance_arb (fun i ->
      match
        Differential.delta_equivalence ~config:i.Generators.config
          i.Generators.coupling i.Generators.circuit
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "%s" msg)

(* Scorer-level: reconstructing a candidate's score from delta-updated
   integer sums is bit-for-bit equal ([Float.equal], not ≈) to
   [Heuristic.score_flat] on the tentatively swapped π — for all three
   heuristic modes, over random couplings, placements, pair sets and
   candidate SWAPs. This is the exactness argument made executable: the
   incidence-walked integer delta must land on the very float the full
   recompute produces. *)
let prop_delta_score_bit_identical =
  let module Heuristic = Sabre.Heuristic in
  let module Routing = Sabre.Routing_pass in
  QCheck.Test.make ~count:200
    ~name:"delta score reconstruction == score_flat bit-for-bit"
    instance_arb (fun i ->
      let coupling = i.Generators.coupling in
      let n = Coupling.n_qubits coupling in
      let dist = Hardware.Dist_cache.hop_distances coupling in
      let dist_int = Hardware.Dist_cache.hop_distances_int coupling in
      let st = Random.State.make [| i.Generators.config.Sabre.Config.seed |] in
      (* random placement: logical q sits on physical l2p.(q) *)
      let l2p = Array.init n Fun.id in
      for k = n - 1 downto 1 do
        let j = Random.State.int st (k + 1) in
        let t = l2p.(k) in
        l2p.(k) <- l2p.(j);
        l2p.(j) <- t
      done;
      let p2l = Array.make n (-1) in
      Array.iteri (fun q p -> p2l.(p) <- q) l2p;
      let rand_pairs len =
        let q1 = Array.init len (fun _ -> Random.State.int st n) in
        let q2 =
          Array.map
            (fun a ->
              let b = ref (Random.State.int st n) in
              while !b = a do
                b := Random.State.int st n
              done;
              !b)
            q1
        in
        (q1, q2)
      in
      let flen = 1 + Random.State.int st 6 in
      let elen = Random.State.int st 8 in
      let fq1, fq2 = rand_pairs flen in
      let eq1, eq2 = rand_pairs (max 1 elen) in
      let decay =
        Array.init n (fun _ ->
            1.0 +. (0.1 *. float_of_int (Random.State.int st 5)))
      in
      let weight = i.Generators.config.Sabre.Config.extended_set_weight in
      let e = Random.State.int st (Coupling.n_edges coupling) in
      let p1, p2 = Coupling.edge_endpoints coupling e in
      (* incidence indices over the pair slots, as the router builds them *)
      let finc = Routing.Incidence.create ()
      and einc = Routing.Incidence.create () in
      Routing.Incidence.build finc ~gen:0 ~n_logical:n ~q1:fq1 ~q2:fq2
        ~len:flen;
      Routing.Incidence.build einc ~gen:0 ~n_logical:n ~q1:eq1 ~q2:eq2
        ~len:elen;
      let l1 = p2l.(p1) and l2 = p2l.(p2) in
      let delta_over inc q1a q2a l skip =
        let d = ref 0 in
        if l >= 0 then
          Routing.Incidence.iter inc l (fun k ->
              let a = q1a.(k) and b = q2a.(k) in
              if a <> skip && b <> skip then begin
                let pa = l2p.(a) and pb = l2p.(b) in
                let pa' = if pa = p1 then p2 else if pa = p2 then p1 else pa in
                let pb' = if pb = p1 then p2 else if pb = p2 then p1 else pb in
                d := !d + dist_int.((pa' * n) + pb') - dist_int.((pa * n) + pb)
              end);
        !d
      in
      let fsum =
        Heuristic.sum_int ~dist:dist_int ~stride:n ~l2p ~q1:fq1 ~q2:fq2
          ~len:flen
      and esum =
        Heuristic.sum_int ~dist:dist_int ~stride:n ~l2p ~q1:eq1 ~q2:eq2
          ~len:elen
      in
      let df =
        delta_over finc fq1 fq2 l1 (-1) + delta_over finc fq1 fq2 l2 l1
      and de =
        delta_over einc eq1 eq2 l1 (-1) + delta_over einc eq1 eq2 l2 l1
      in
      (* full recompute on the tentatively swapped π *)
      let l2p' = Array.copy l2p in
      if l1 >= 0 then l2p'.(l1) <- p2;
      if l2 >= 0 then l2p'.(l2) <- p1;
      List.for_all
        (fun heuristic ->
          let full =
            Heuristic.score_flat ~heuristic ~dist ~stride:n ~l2p:l2p' ~fq1
              ~fq2 ~flen ~eq1 ~eq2 ~elen ~weight ~decay ~p1 ~p2
          in
          let delta =
            Heuristic.score_of_sums_int ~heuristic ~fsum:(fsum + df) ~flen
              ~esum:(esum + de) ~elen ~weight ~decay ~p1 ~p2
          in
          Float.equal full delta
          || QCheck.Test.fail_reportf
               "heuristic %s: full %h vs delta %h (flen=%d elen=%d p1=%d \
                p2=%d)"
               (match heuristic with
               | Sabre.Config.Basic -> "basic"
               | Sabre.Config.Lookahead -> "lookahead"
               | Sabre.Config.Decay -> "decay")
               full delta flen elen p1 p2)
        [ Sabre.Config.Basic; Sabre.Config.Lookahead; Sabre.Config.Decay ])

(* ------------------------------------------------------------------ *)
(* Flat (CSR) DAG view agrees with the list-based accessors            *)
(* ------------------------------------------------------------------ *)

let dag_views_agree d =
  let module Dag = Quantum.Dag in
  let collect iter i =
    let acc = ref [] in
    iter d i (fun j -> acc := j :: !acc);
    List.rev !acc
  in
  let ok = ref true in
  for i = 0 to Dag.n_nodes d - 1 do
    let succs = Dag.successors d i and preds = Dag.predecessors d i in
    if collect Dag.succ_iter i <> succs then
      QCheck.Test.fail_reportf "node %d: succ_iter disagrees" i;
    if collect Dag.pred_iter i <> preds then
      QCheck.Test.fail_reportf "node %d: pred_iter disagrees" i;
    if Dag.in_degree d i <> List.length preds then
      QCheck.Test.fail_reportf "node %d: in_degree disagrees" i;
    if Dag.out_degree d i <> List.length succs then
      QCheck.Test.fail_reportf "node %d: out_degree disagrees" i;
    let pair = Gate.two_qubit_pair (Dag.gate d i) in
    if Dag.two_qubit_pair d i <> pair then
      QCheck.Test.fail_reportf "node %d: cached pair disagrees" i;
    (match pair with
    | Some (a, b) ->
      if Dag.pair_q1 d i <> a || Dag.pair_q2 d i <> b then
        QCheck.Test.fail_reportf "node %d: pair_q1/q2 disagree" i;
      if not (Dag.is_two_qubit_node d i) then
        QCheck.Test.fail_reportf "node %d: is_two_qubit_node false" i
    | None ->
      if Dag.pair_q1 d i <> -1 || Dag.pair_q2 d i <> -1 then
        QCheck.Test.fail_reportf "node %d: sentinel pair expected" i;
      if Dag.is_two_qubit_node d i then
        QCheck.Test.fail_reportf "node %d: is_two_qubit_node true" i)
  done;
  !ok

let prop_dag_csr_matches_lists =
  QCheck.Test.make ~count:100
    ~name:"flat CSR DAG accessors agree with list-based ones" circuit_arb
    (fun c ->
      dag_views_agree (Quantum.Dag.of_circuit c)
      && dag_views_agree (Quantum.Dag.of_circuit_commuting c))

(* ------------------------------------------------------------------ *)
(* Circuit-level properties                                            *)
(* ------------------------------------------------------------------ *)

let prop_reverse_involutive =
  QCheck.Test.make ~count:100 ~name:"reverse . reverse = id (unitary part)"
    circuit_arb (fun c ->
      let unitary =
        Circuit.filter (function Gate.Measure _ -> false | _ -> true) c
      in
      Circuit.equal unitary (Circuit.reverse (Circuit.reverse unitary)))

let prop_reverse_is_inverse_unitary =
  QCheck.Test.make ~count:40 ~name:"circuit . reverse = identity unitary"
    circuit_arb (fun c ->
      let unitary =
        Circuit.filter (function Gate.Measure _ -> false | _ -> true) c
      in
      let rng = Random.State.make [| 123 |] in
      let s = Sim.Statevector.random ~state:rng (Circuit.n_qubits c) in
      let expected = Sim.Statevector.copy s in
      Sim.Statevector.apply_circuit s unitary;
      Sim.Statevector.apply_circuit s (Circuit.reverse unitary);
      Sim.Statevector.approx_equal s expected)

(* satellite: parse . print = id on generated circuits *)
let prop_qasm_roundtrip =
  QCheck.Test.make ~count:100 ~name:"qasm print/parse roundtrip" circuit_arb
    (fun c ->
      let back = Quantum.Qasm.of_string (Quantum.Qasm.to_string c) in
      Circuit.equal c back)

let prop_depth_bounds =
  QCheck.Test.make ~count:100 ~name:"depth bounds" circuit_arb (fun c ->
      let d = Quantum.Depth.depth c in
      let g =
        Circuit.gate_count c
        + List.length
            (List.filter
               (function Gate.Measure _ -> true | _ -> false)
               (Circuit.gates c))
      in
      d <= g
      &&
      (* depth at least the busiest qubit's load *)
      let loads = Array.make (Circuit.n_qubits c) 0 in
      List.iter
        (fun gate ->
          match gate with
          | Gate.Barrier _ -> ()
          | _ ->
            List.iter (fun q -> loads.(q) <- loads.(q) + 1) (Gate.qubits gate))
        (Circuit.gates c);
      Array.for_all (fun l -> d >= l) loads)

let prop_distance_matrix_metric =
  QCheck.Test.make ~count:60 ~name:"distance matrix is a metric"
    (QCheck.make (Generators.coupling ~min_qubits:2 ()))
    (fun device ->
      let n = Coupling.n_qubits device in
      let d = Coupling.distance_matrix device in
      let ok = ref true in
      for i = 0 to n - 1 do
        if d.(i).(i) <> 0 then ok := false;
        for j = 0 to n - 1 do
          if d.(i).(j) <> d.(j).(i) then ok := false;
          if i <> j && Coupling.connected device i j && d.(i).(j) <> 1 then
            ok := false;
          for k = 0 to n - 1 do
            if d.(i).(j) > d.(i).(k) + d.(k).(j) then ok := false
          done
        done
      done;
      !ok)

let prop_bfs_matches_floyd_warshall =
  (* PR 4 replaced the O(V^3) Floyd-Warshall all-pairs computation with
     per-source BFS over the CSR adjacency; on unit-weight graphs the two
     must agree exactly. The old implementation is kept as the testing
     reference. *)
  QCheck.Test.make ~count:80
    ~name:"BFS all-pairs distances equal Floyd-Warshall"
    (QCheck.make (Generators.coupling ~min_qubits:2 ~slack:12 ()))
    (fun device ->
      Coupling.distance_matrix device = Coupling.floyd_warshall device)

let batch_arb =
  QCheck.make
    QCheck.Gen.(
      Generators.coupling ~min_qubits:4 ~slack:6 () >>= fun coupling ->
      let max_qubits = min 6 (Coupling.n_qubits coupling) in
      Generators.config >>= fun config ->
      list_size (int_range 2 6)
        (Generators.circuit ~min_qubits:2 ~max_qubits ~max_gates:25 ())
      >|= fun circuits -> (coupling, config, circuits))
    ~print:(fun (coupling, config, circuits) ->
      Printf.sprintf "device: %d qubits, %d circuits, seed=%d"
        (Coupling.n_qubits coupling)
        (List.length circuits) config.Sabre.Config.seed)

let prop_batch_matches_sequential =
  QCheck.Test.make ~count:30
    ~name:"Batch.compile_many with N domains equals sequential exactly"
    batch_arb (fun (coupling, config, circuits) ->
      let jobs =
        Array.of_list
          (List.mapi
             (fun i c ->
               { Engine.Batch.name = Printf.sprintf "job%d" i; circuit = c })
             circuits)
      in
      let seq = Engine.Batch.compile_many ~config ~domains:1 coupling jobs in
      let par = Engine.Batch.compile_many ~config ~domains:3 coupling jobs in
      let same i (a : Engine.Batch.outcome) (b : Engine.Batch.outcome) =
        match (a, b) with
        | Ok x, Ok y ->
          x.name = y.name
          && Circuit.equal x.physical y.physical
          && Mapping.equal x.initial y.initial
          && Mapping.equal x.final y.final
          && x.stats.n_swaps = y.stats.n_swaps
          && x.stats.search_steps = y.stats.search_steps
          && x.stats.first_traversal_swaps = y.stats.first_traversal_swaps
          && x.stats.routed_depth = y.stats.routed_depth
        | Error x, Error y -> x.name = y.name && x.message = y.message
        | _ ->
          QCheck.Test.fail_reportf "job %d: outcome kinds differ" i
      in
      Array.length seq.outcomes = Array.length par.outcomes
      &&
      let ok = ref true in
      Array.iteri
        (fun i a ->
          if not (same i a par.outcomes.(i)) then begin
            ok := false;
            QCheck.Test.fail_reportf "job %d: 3-domain result diverges" i
          end)
        seq.outcomes;
      !ok)

let prop_mapping_swap_involutive =
  QCheck.Test.make ~count:100 ~name:"mapping swap twice = identity"
    (QCheck.make
       QCheck.Gen.(
         int_range 1 8 >>= fun n ->
         int_range n 12 >>= fun np ->
         int_range 0 (np - 1) >>= fun p1 ->
         int_range 0 (np - 1) >>= fun p2 ->
         int >|= fun seed -> (n, np, p1, p2, seed)))
    (fun (n, np, p1, p2, seed) ->
      let m =
        Mapping.random
          ~state:(Random.State.make [| seed |])
          ~n_logical:n ~n_physical:np
      in
      let m' = Mapping.swap_physical (Mapping.swap_physical m p1 p2) p1 p2 in
      Mapping.equal m m')

let prop_canonical_key_stable_under_dag_relinearisation =
  QCheck.Test.make ~count:60
    ~name:"canonical key invariant under topological relinearisation"
    circuit_arb (fun c ->
      let dag = Quantum.Dag.of_circuit c in
      let order = Quantum.Dag.topological_order dag in
      let gates = Circuit.gate_array c in
      let relinearised =
        Circuit.create ~n_qubits:(Circuit.n_qubits c)
          ~n_clbits:(Circuit.n_clbits c)
          (List.map (fun i -> gates.(i)) order)
      in
      Circuit.equal_up_to_reordering c relinearised)

let prop_sabre_no_swaps_on_complete_graph =
  QCheck.Test.make ~count:60 ~name:"no swaps needed on complete coupling"
    circuit_arb (fun c ->
      let n = max 2 (Circuit.n_qubits c) in
      let device = Devices.complete n in
      let r =
        Sabre.Compiler.run
          ~config:{ Sabre.Config.default with trials = 1 }
          device c
      in
      r.stats.n_swaps = 0)

let prop_optimizer_preserves_unitary =
  QCheck.Test.make ~count:40 ~name:"peephole optimiser preserves unitary"
    circuit_arb (fun c ->
      let unitary =
        Circuit.filter (function Gate.Measure _ -> false | _ -> true) c
      in
      let optimised = Quantum.Optimize.run unitary in
      Circuit.length optimised <= Circuit.length unitary
      && Sim.Equivalence.circuits_equivalent ~states:2 unitary optimised)

let prop_optimizer_idempotent =
  QCheck.Test.make ~count:60 ~name:"peephole optimiser idempotent" circuit_arb
    (fun c ->
      let once = Quantum.Optimize.run c in
      Circuit.equal once (Quantum.Optimize.run once))

let prop_alap_slack_nonnegative =
  QCheck.Test.make ~count:80 ~name:"slack >= 0 and alap depth = asap depth"
    circuit_arb (fun c ->
      let s = Quantum.Depth.slack c in
      Array.for_all (fun x -> x >= 0) s
      && (Quantum.Depth.alap c).Quantum.Depth.depth
         = (Quantum.Depth.asap c).Quantum.Depth.depth)

let prop_directed_fix_sound =
  (* random direction assignment over a random connected device: the fix
     pass always yields direction-legal, unitarily equal circuits *)
  QCheck.Test.make ~count:40 ~name:"directed fix sound"
    (QCheck.make
       QCheck.Gen.(
         Generators.circuit () >>= fun c ->
         Generators.coupling ~min_qubits:(Circuit.n_qubits c) ()
         >>= fun device ->
         int_bound 1_000_000 >|= fun seed -> (c, device, seed)))
    (fun (c, device, seed) ->
      let rng = Random.State.make [| seed |] in
      let arrows =
        List.map
          (fun (a, b) -> if Random.State.bool rng then (a, b) else (b, a))
          (Coupling.edges device)
      in
      let d =
        Hardware.Directed.create ~n_qubits:(Coupling.n_qubits device) arrows
      in
      let r =
        Sabre.Compiler.run
          ~config:{ Sabre.Config.default with trials = 1 }
          device c
      in
      let fixed = Hardware.Directed.fix_directions d r.physical in
      (match Hardware.Directed.check_directions d fixed with
      | Ok () -> true
      | Error g ->
        QCheck.Test.fail_reportf "illegal gate %s" (Quantum.Gate.to_string g))
      && Sim.Equivalence.circuits_equivalent ~states:1
           (Quantum.Decompose.expand_all r.physical)
           fixed)

let prop_noise_metric_consistent =
  QCheck.Test.make ~count:30 ~name:"noise routing metrics are metrics"
    (QCheck.make
       QCheck.Gen.(
         Generators.coupling ~min_qubits:3 () >>= fun device ->
         int_bound 10_000 >|= fun seed -> (device, seed)))
    (fun (device, seed) ->
      let m = Hardware.Noise.randomized ~seed device in
      let check_matrix d =
        let n = Coupling.n_qubits device in
        let ok = ref true in
        for i = 0 to n - 1 do
          if Float.abs d.(i).(i) > 1e-12 then ok := false;
          for j = 0 to n - 1 do
            if Float.abs (d.(i).(j) -. d.(j).(i)) > 1e-9 then ok := false;
            for k = 0 to n - 1 do
              if d.(i).(j) > d.(i).(k) +. d.(k).(j) +. 1e-9 then ok := false
            done
          done
        done;
        !ok
      in
      check_matrix (Hardware.Noise.swap_reliability_distance m)
      && check_matrix (Hardware.Noise.mixed_routing_distance m))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_all_routers_conform;
      prop_seed_determinism;
      prop_relabel_invariance;
      prop_commuting_conformance;
      prop_flatcore_equivalence;
      prop_delta_equivalence;
      prop_delta_score_bit_identical;
      prop_dag_csr_matches_lists;
      prop_reverse_involutive;
      prop_reverse_is_inverse_unitary;
      prop_qasm_roundtrip;
      prop_depth_bounds;
      prop_distance_matrix_metric;
      prop_bfs_matches_floyd_warshall;
      prop_batch_matches_sequential;
      prop_mapping_swap_involutive;
      prop_canonical_key_stable_under_dag_relinearisation;
      prop_sabre_no_swaps_on_complete_graph;
      prop_optimizer_preserves_unitary;
      prop_optimizer_idempotent;
      prop_alap_slack_nonnegative;
      prop_directed_fix_sound;
      prop_noise_metric_consistent;
    ]
