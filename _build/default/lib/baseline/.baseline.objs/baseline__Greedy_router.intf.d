lib/baseline/greedy_router.mli: Hardware Quantum Sabre
