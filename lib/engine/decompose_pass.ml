module Decompose = Quantum.Decompose

type level = Keep | Swaps | All

let name = "decompose"

let pass ?(level = Keep) () =
  Pass.make name (fun ~instrument (ctx : Context.t) ->
      let before = Decompose.elementary_gate_count ctx.circuit in
      let circuit =
        match level with
        | Keep -> ctx.circuit
        | Swaps -> Decompose.expand_swaps ctx.circuit
        | All -> Decompose.expand_all ctx.circuit
      in
      let ctx =
        (* rewriting the circuit invalidates the create-time cache
           probe (it digested the pre-decompose gates): fall back to an
           uncached route rather than serve or store a mismatched key *)
        if level <> Keep && ctx.cache_status <> Context.Cache_off then
          {
            ctx with
            circuit;
            cache_status = Context.Cache_off;
            routed = None;
            verified = None;
          }
        else { ctx with circuit }
      in
      let ctx = Pass.count instrument ~pass:name ctx "gates_in" before in
      Pass.count instrument ~pass:name ctx "gates_out"
        (Decompose.elementary_gate_count circuit))
