type t = {
  n : int;
  adj : int list array;
  edge_list : (int * int) list;  (* normalised (min,max), sorted *)
  (* flat views for the routing hot path *)
  adj_off : int array;  (* CSR offsets into adj_idx, length n+1 *)
  adj_idx : int array;  (* neighbours, ascending within each row *)
  edge_a : int array;  (* edge e = (edge_a.(e), edge_b.(e)), sorted *)
  edge_b : int array;
  mutable dist : int array array option;  (* BFS-APSP cache *)
  mutable edge_ids : int array option;  (* n*n flat: packed pair -> edge id *)
  mutable digest : string option;  (* canonical edge-list digest cache *)
}

let infinity_dist = 1 lsl 29

let create ~n_qubits edge_input =
  if n_qubits <= 0 then invalid_arg "Coupling.create: need at least one qubit";
  let seen = Hashtbl.create (List.length edge_input) in
  let adj = Array.make n_qubits [] in
  let normalised =
    List.map
      (fun (a, b) ->
        if a < 0 || a >= n_qubits || b < 0 || b >= n_qubits then
          invalid_arg
            (Printf.sprintf "Coupling.create: edge (%d,%d) out of range" a b);
        if a = b then
          invalid_arg (Printf.sprintf "Coupling.create: self-loop on %d" a);
        let e = (min a b, max a b) in
        if Hashtbl.mem seen e then
          invalid_arg
            (Printf.sprintf "Coupling.create: duplicate edge (%d,%d)" a b);
        Hashtbl.add seen e ();
        e)
      edge_input
  in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    normalised;
  Array.iteri (fun i l -> adj.(i) <- List.sort Int.compare l) adj;
  let edge_list =
    List.sort
      (fun (a1, b1) (a2, b2) ->
        let c = Int.compare a1 a2 in
        if c <> 0 then c else Int.compare b1 b2)
      normalised
  in
  let adj_off = Array.make (n_qubits + 1) 0 in
  for i = 0 to n_qubits - 1 do
    adj_off.(i + 1) <- adj_off.(i) + List.length adj.(i)
  done;
  let adj_idx = Array.make adj_off.(n_qubits) 0 in
  Array.iteri
    (fun i l -> List.iteri (fun k j -> adj_idx.(adj_off.(i) + k) <- j) l)
    adj;
  let m = List.length edge_list in
  let edge_a = Array.make m 0 and edge_b = Array.make m 0 in
  List.iteri
    (fun e (a, b) ->
      edge_a.(e) <- a;
      edge_b.(e) <- b)
    edge_list;
  {
    n = n_qubits;
    adj;
    edge_list;
    adj_off;
    adj_idx;
    edge_a;
    edge_b;
    dist = None;
    edge_ids = None;
    digest = None;
  }

let n_qubits g = g.n
let edges g = g.edge_list
let n_edges g = Array.length g.edge_a
let neighbors g i = g.adj.(i)
let degree g i = g.adj_off.(i + 1) - g.adj_off.(i)
let connected g a b = List.mem b g.adj.(a)

let neighbors_iter g i f =
  for k = g.adj_off.(i) to g.adj_off.(i + 1) - 1 do
    f g.adj_idx.(k)
  done

let edge_endpoints g e = (g.edge_a.(e), g.edge_b.(e))

(* Flat (min,max)-packed pair -> edge-id table, built on first use like
   the distance cache. Edge ids follow the sorted [edges] order, so a
   scan over ids enumerates edges in their canonical order. *)
let edge_id_table g =
  match g.edge_ids with
  | Some t -> t
  | None ->
    let t = Array.make (g.n * g.n) (-1) in
    Array.iteri
      (fun e a ->
        let b = g.edge_b.(e) in
        t.((a * g.n) + b) <- e;
        t.((b * g.n) + a) <- e)
      g.edge_a;
    g.edge_ids <- Some t;
    t

let edge_id g a b = (edge_id_table g).((a * g.n) + b)

let is_connected_graph g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter visit g.adj.(i)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

(* Per-source BFS over the CSR adjacency: O(V·(V+E)) total, which on
   the sparse coupling graphs of real devices (E = O(V)) is O(V²) — a
   decisive win over Floyd–Warshall's O(V³) (~64M inner steps on a
   20×20 grid vs ~320k BFS edge relaxations). Unweighted edges make BFS
   exact, so the matrix is identical to the Floyd–Warshall one. *)
let compute_distances g =
  let d = Array.make_matrix g.n g.n infinity_dist in
  let queue = Array.make g.n 0 in
  for src = 0 to g.n - 1 do
    let row = d.(src) in
    row.(src) <- 0;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = row.(u) in
      for k = g.adj_off.(u) to g.adj_off.(u + 1) - 1 do
        let v = g.adj_idx.(k) in
        if row.(v) = infinity_dist then begin
          row.(v) <- du + 1;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done
  done;
  d

(* The paper's original O(N³) all-pairs algorithm (Section IV-A), kept
   as the differential-testing reference for the BFS implementation
   above; not used on any production path. *)
let floyd_warshall g =
  let d = Array.make_matrix g.n g.n infinity_dist in
  for i = 0 to g.n - 1 do
    d.(i).(i) <- 0;
    List.iter (fun j -> d.(i).(j) <- 1) g.adj.(i)
  done;
  for k = 0 to g.n - 1 do
    for i = 0 to g.n - 1 do
      let dik = d.(i).(k) in
      if dik < infinity_dist then
        for j = 0 to g.n - 1 do
          let through = dik + d.(k).(j) in
          if through < d.(i).(j) then d.(i).(j) <- through
        done
    done
  done;
  d

let distance_matrix g =
  match g.dist with
  | Some d -> d
  | None ->
    let d = compute_distances g in
    g.dist <- Some d;
    d

let distance g i j = (distance_matrix g).(i).(j)

let diameter g =
  let d = distance_matrix g in
  let best = ref 0 in
  for i = 0 to g.n - 1 do
    for j = 0 to g.n - 1 do
      if d.(i).(j) < infinity_dist && d.(i).(j) > !best then best := d.(i).(j)
    done
  done;
  !best

let shortest_path g src dst =
  if src = dst then [ src ]
  else begin
    let parent = Array.make g.n (-1) in
    let q = Queue.create () in
    Queue.add src q;
    parent.(src) <- src;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if parent.(v) < 0 then begin
            parent.(v) <- u;
            if v = dst then found := true else Queue.add v q
          end)
        g.adj.(u)
    done;
    if not !found then raise Not_found;
    let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
    build dst []
  end

(* Canonical device identity: MD5 of the qubit count plus the
   normalised, sorted edge list. Two graphs get the same digest iff they
   have identical vertex counts and edge sets — the key the
   device-keyed distance cache ([Dist_cache]) memoises under. *)
let digest g =
  match g.digest with
  | Some d -> d
  | None ->
    let buf = Buffer.create (16 + (8 * Array.length g.edge_a)) in
    Buffer.add_string buf (string_of_int g.n);
    Array.iteri
      (fun e a ->
        Buffer.add_char buf ';';
        Buffer.add_string buf (string_of_int a);
        Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int g.edge_b.(e)))
      g.edge_a;
    let d = Digest.to_hex (Digest.string (Buffer.contents buf)) in
    g.digest <- Some d;
    d

let pp ppf g =
  Format.fprintf ppf "@[<v>coupling graph: %d qubits, %d edges@,%a@]" g.n
    (n_edges g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (a, b) -> Format.fprintf ppf "(%d,%d)" a b))
    g.edge_list

let to_dot g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph coupling {\n  node [shape=circle];\n";
  for q = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  Q%d;\n" q)
  done;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  Q%d -- Q%d;\n" a b))
    g.edge_list;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
