(* Shared verification helpers for the routing test suites. *)

module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Mapping = Sabre.Mapping

(* Assert that a routed circuit is hardware-compliant and semantically
   equal to its source; additionally check unitary equivalence by dense
   simulation when the device is small enough. *)
let assert_routed ?(simulate_up_to = 10) ~coupling ~initial ~final ~logical
    ~physical label =
  (match
     Sim.Tracker.check ~coupling ~initial ~final ~logical ~physical ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: tracker: %a" label Sim.Tracker.pp_error e);
  if Coupling.n_qubits coupling <= simulate_up_to then
    if
      not
        (Sim.Equivalence.routed_equivalent ~states:2 ~initial ~final ~logical
           ~physical ())
    then Alcotest.failf "%s: state-vector equivalence failed" label

let assert_compiler_result ?simulate_up_to ~coupling ~logical
    (r : Sabre.Compiler.result) label =
  assert_routed ?simulate_up_to ~coupling
    ~initial:(Mapping.l2p_array r.initial_mapping)
    ~final:(Mapping.l2p_array r.final_mapping)
    ~logical ~physical:r.physical label

(* A deterministic random circuit for stress tests: CNOT-dominated with
   some single-qubit gates, uniform qubit choice. *)
let random_circuit ~seed ~n ~gates =
  Workloads.Random_reversible.circuit ~seed ~hot_bias:0.0 ~n ~gates ()
