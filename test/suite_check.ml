(* Unit tests for the conformance/fuzzing subsystem itself: generator
   invariants, shrinker contract, oracle mutation tests, corpus
   round-trip, and the broken-router end-to-end campaign. *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Config = Sabre.Config
module Generators = Check.Generators
module Oracle = Check.Oracle
module Differential = Check.Differential
module Corpus = Check.Corpus
module Fuzz = Check.Fuzz

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Generator invariants                                                *)
(* ------------------------------------------------------------------ *)

let prop_coupling_connected =
  QCheck.Test.make ~count:300 ~name:"generated coupling graphs are connected"
    (QCheck.make (Generators.coupling ()))
    Coupling.is_connected_graph

let prop_circuit_swap_free =
  QCheck.Test.make ~count:200
    ~name:"generated circuits are SWAP-free and within bounds"
    (Generators.circuit_arb ())
    (fun c ->
      let n = Circuit.n_qubits c in
      n >= 2 && n <= 6
      && List.for_all
           (function Gate.Swap _ -> false | _ -> true)
           (Circuit.gates c))

let prop_instance_well_formed =
  QCheck.Test.make ~count:200
    ~name:"instances: device fits circuit, config validates"
    (Generators.instance_arb ())
    (fun i ->
      Circuit.n_qubits i.Generators.circuit
      <= Coupling.n_qubits i.Generators.coupling
      && Coupling.is_connected_graph i.Generators.coupling
      && Config.validate i.Generators.config = Ok ())

let test_instance_of_seed_deterministic () =
  let a = Generators.instance_of_seed 12345 in
  let b = Generators.instance_of_seed 12345 in
  check Alcotest.bool "same circuit" true
    (Circuit.equal a.Generators.circuit b.Generators.circuit);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "same device" (Coupling.edges a.Generators.coupling)
    (Coupling.edges b.Generators.coupling);
  check Alcotest.bool "same config" true
    (a.Generators.config = b.Generators.config);
  let c = Generators.instance_of_seed 12346 in
  check Alcotest.bool "different seed differs somewhere" true
    ((not (Circuit.equal a.Generators.circuit c.Generators.circuit))
    || a.Generators.config <> c.Generators.config
    || Coupling.edges a.Generators.coupling
       <> Coupling.edges c.Generators.coupling)

(* ------------------------------------------------------------------ *)
(* Shrinker contract                                                   *)
(* ------------------------------------------------------------------ *)

let test_shrink_smaller_and_still_failing () =
  let c = Helpers.random_circuit ~seed:11 ~n:5 ~gates:60 in
  let still_fails c = Circuit.two_qubit_count c >= 1 in
  Alcotest.(check bool) "precondition" true (still_fails c);
  let shrunk, steps = Fuzz.shrink ~still_fails c in
  check Alcotest.bool "shrunk <= original" true
    (Circuit.length shrunk <= Circuit.length c);
  check Alcotest.bool "still failing" true (still_fails shrunk);
  check Alcotest.int "minimal for this predicate: one gate" 1
    (Circuit.length shrunk);
  check Alcotest.bool "made progress" true (steps > 0)

let test_shrink_keeps_circuit_when_nothing_removable () =
  let c =
    Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1) ]
  in
  let shrunk, _ = Fuzz.shrink ~still_fails:(fun c -> Circuit.length c = 1) c in
  check Alcotest.int "single gate kept" 1 (Circuit.length shrunk)

(* ------------------------------------------------------------------ *)
(* Oracle: accepts real routings, rejects corrupted ones               *)
(* ------------------------------------------------------------------ *)

let routed_fixture () =
  Differential.ensure_registered ();
  let device = Devices.linear 5 in
  let circuit = Workloads.Qft.circuit 5 in
  let config = { Config.default with trials = 1 } in
  let r =
    Differential.route ~config device circuit Engine.Sabre_router.router
  in
  (device, circuit, r)

let oracle device circuit (r : Differential.routed) physical =
  Oracle.check ~coupling:device ~logical:circuit ~initial:r.initial
    ~final:r.final ~physical ()

let rebuild like gates =
  Circuit.create ~n_qubits:(Circuit.n_qubits like)
    ~n_clbits:(Circuit.n_clbits like) gates

let test_oracle_accepts_valid_routing () =
  let device, circuit, r = routed_fixture () in
  match oracle device circuit r r.physical with
  | Ok () -> ()
  | Error f -> Alcotest.failf "valid routing rejected: %a" Oracle.pp_failure f

let test_oracle_rejects_dropped_swap () =
  let device, circuit, r = routed_fixture () in
  let gates = Circuit.gates r.physical in
  check Alcotest.bool "fixture inserted swaps" true
    (List.exists (function Gate.Swap _ -> true | _ -> false) gates);
  let dropped = ref false in
  let corrupted =
    rebuild r.physical
      (List.filter
         (function
           | Gate.Swap _ when not !dropped ->
             dropped := true;
             false
           | _ -> true)
         gates)
  in
  match oracle device circuit r corrupted with
  | Error (Oracle.Tracker _) -> ()
  | Error f ->
    Alcotest.failf "expected tracker failure, got %a" Oracle.pp_failure f
  | Ok () -> Alcotest.fail "corrupted circuit (dropped SWAP) accepted"

let test_oracle_rejects_off_edge_gate () =
  let device, circuit, r = routed_fixture () in
  (* retarget the first CNOT onto the two ends of the line — not an edge *)
  let retargeted = ref false in
  let corrupted =
    rebuild r.physical
      (List.map
         (function
           | Gate.Cnot _ when not !retargeted ->
             retargeted := true;
             Gate.Cnot (0, 4)
           | g -> g)
         (Circuit.gates r.physical))
  in
  check Alcotest.bool "mutated" true !retargeted;
  match oracle device circuit r corrupted with
  | Error (Oracle.Tracker _) -> ()
  | Error f ->
    Alcotest.failf "expected compliance failure, got %a" Oracle.pp_failure f
  | Ok () -> Alcotest.fail "off-edge gate accepted"

let test_oracle_rejects_extra_gate () =
  let device, circuit, r = routed_fixture () in
  let corrupted = Circuit.append r.physical (Gate.Single (Gate.H, 0)) in
  match oracle device circuit r corrupted with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "extra appended gate accepted"

let test_oracle_rejects_wrong_final_mapping () =
  let device, circuit, r = routed_fixture () in
  let final = Array.copy r.final in
  let t = final.(0) in
  final.(0) <- final.(1);
  final.(1) <- t;
  match
    Oracle.check ~coupling:device ~logical:circuit ~initial:r.initial ~final
      ~physical:r.physical ()
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong final mapping accepted"

let test_oracle_accounting_detects_gate_count_drift () =
  (* bypass the tracker leg by corrupting only the count: an identity
     gate is semantically invisible to dense simulation but must still
     fail the accounting equation *)
  let device, circuit, r = routed_fixture () in
  let corrupted = Circuit.append r.physical (Gate.Single (Gate.I, 0)) in
  match oracle device circuit r corrupted with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "identity padding accepted"

(* ------------------------------------------------------------------ *)
(* Corpus round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let sample_repro () =
  let i = Generators.instance_of_seed 777 in
  {
    Corpus.router = "sabre";
    property = "conformance";
    seed = 777;
    failure = "tracker: example";
    config = i.Generators.config;
    coupling = i.Generators.coupling;
    circuit = i.Generators.circuit;
  }

let test_corpus_roundtrip () =
  let r = sample_repro () in
  match Corpus.of_string (Corpus.to_string r) with
  | Error msg -> Alcotest.failf "corpus parse: %s" msg
  | Ok back ->
    check Alcotest.string "router" r.Corpus.router back.Corpus.router;
    check Alcotest.string "property" r.Corpus.property back.Corpus.property;
    check Alcotest.int "seed" r.Corpus.seed back.Corpus.seed;
    check Alcotest.bool "config (bit-exact floats)" true
      (r.Corpus.config = back.Corpus.config);
    check
      (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
      "edges"
      (Coupling.edges r.Corpus.coupling)
      (Coupling.edges back.Corpus.coupling);
    check Alcotest.bool "circuit" true
      (Circuit.equal r.Corpus.circuit back.Corpus.circuit)

let test_corpus_rejects_garbage () =
  (match Corpus.of_string "not a repro" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Corpus.of_string "sabre-fuzz repro v1\nrouter=x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated repro accepted"

(* ------------------------------------------------------------------ *)
(* End to end: the campaign catches, shrinks and replays a real bug    *)
(* ------------------------------------------------------------------ *)

let test_campaign_catches_broken_router () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sabre-fuzz-test" in
  let campaign =
    Fuzz.run ~max_trials:50 ~corpus_dir:dir ~seed:2019
      ~routers:[ "broken" ] ()
  in
  match
    List.filter
      (fun (cx : Fuzz.counterexample) ->
        cx.repro.Corpus.property = "conformance")
      campaign.failures
  with
  | [] -> Alcotest.fail "broken router escaped a 50-trial campaign"
  | cx :: _ -> (
    check Alcotest.string "attributed to the broken router" "broken"
      cx.repro.Corpus.router;
    check Alcotest.bool "shrunk <= original" true
      (cx.shrunk_gates <= cx.original_gates);
    check Alcotest.bool "minimal case still needs routing" true
      (Circuit.two_qubit_count cx.repro.Corpus.circuit >= 1);
    let path =
      match cx.path with
      | Some p -> p
      | None -> Alcotest.fail "no repro file written"
    in
    check Alcotest.bool "repro file exists" true (Sys.file_exists path);
    match Corpus.load path with
    | Error msg -> Alcotest.failf "saved repro unreadable: %s" msg
    | Ok repro -> (
      match Fuzz.replay repro with
      | `Reproduced _ -> ()
      | `Passes -> Alcotest.fail "replay of the broken repro passes"
      | `Error msg -> Alcotest.failf "replay error: %s" msg))

let test_campaign_clean_on_real_routers () =
  let campaign = Fuzz.run ~max_trials:25 ~seed:42 ~routers:[ "sabre"; "greedy"; "bka" ] () in
  check Alcotest.int "trials run" 25 campaign.trials_run;
  (match campaign.failures with
  | [] -> ()
  | cx :: _ ->
    Alcotest.failf "unexpected counterexample: %s/%s: %s"
      cx.repro.Corpus.router cx.repro.Corpus.property cx.repro.Corpus.failure)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_coupling_connected; prop_circuit_swap_free; prop_instance_well_formed ]
  @ [
      tc "instance_of_seed is deterministic" `Quick
        test_instance_of_seed_deterministic;
      tc "shrinker: smaller-or-equal and still failing" `Quick
        test_shrink_smaller_and_still_failing;
      tc "shrinker: keeps irreducible circuit" `Quick
        test_shrink_keeps_circuit_when_nothing_removable;
      tc "oracle accepts a valid routing" `Quick test_oracle_accepts_valid_routing;
      tc "oracle rejects a dropped SWAP" `Quick test_oracle_rejects_dropped_swap;
      tc "oracle rejects an off-edge gate" `Quick test_oracle_rejects_off_edge_gate;
      tc "oracle rejects an extra gate" `Quick test_oracle_rejects_extra_gate;
      tc "oracle rejects a wrong final mapping" `Quick
        test_oracle_rejects_wrong_final_mapping;
      tc "oracle rejects identity padding" `Quick
        test_oracle_accounting_detects_gate_count_drift;
      tc "corpus round-trip" `Quick test_corpus_roundtrip;
      tc "corpus rejects malformed input" `Quick test_corpus_rejects_garbage;
      tc "campaign catches, shrinks and replays the broken router" `Quick
        test_campaign_catches_broken_router;
      tc "campaign is clean on the real routers" `Quick
        test_campaign_clean_on_real_routers;
    ]
