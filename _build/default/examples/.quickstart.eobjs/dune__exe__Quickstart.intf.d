examples/quickstart.mli:
