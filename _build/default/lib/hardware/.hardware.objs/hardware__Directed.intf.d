lib/hardware/directed.mli: Coupling Quantum
