lib/baseline/heap.mli:
