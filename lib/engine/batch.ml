module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

type job = { name : string; circuit : Circuit.t }

type success = {
  name : string;
  physical : Circuit.t;
  initial : Mapping.t;
  final : Mapping.t;
  stats : Stats.t;
}

type error = { name : string; message : string }
type outcome = (success, error) result

type report = {
  outcomes : outcome array;
  wall_s : float;
  domains : int;
  domain_stats : Scheduler.domain_stats array;
}

let wall = Unix.gettimeofday

let compile_one ~config ~pipeline ~instrument coupling job =
  let t0 = wall () in
  match
    Context.create ~config ~trial_mode:Trial_runner.Sequential ~instrument
      coupling job.circuit
    |> Pipeline.run ~instrument pipeline
  with
  | ctx ->
    let r = Context.routed_exn ctx in
    Ok
      {
        name = job.name;
        physical = r.Context.physical;
        initial = r.Context.trial_initial;
        final = r.Context.final_mapping;
        stats = Context.stats ctx ~time_s:(wall () -. t0);
      }
  | exception Router.Route_failed msg -> Error { name = job.name; message = msg }
  | exception Verify_pass.Verify_failed msg ->
    Error { name = job.name; message = msg }
  | exception Invalid_argument msg -> Error { name = job.name; message = msg }

let compile_many ?(config = Config.default) ?(router = Sabre_router.router)
    ?(domains = 1) ?(verify = false) ?(instrument = Instrument.null) coupling
    jobs =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.Batch: " ^ msg));
  (* Warm the device-keyed distance cache once on the calling domain so
     workers start from a hit instead of racing on the first miss. *)
  ignore (Hardware.Dist_cache.hop_distances coupling);
  let pipeline = Pipeline.default ~router ~verify () in
  let thunks =
    Array.map
      (fun job () -> compile_one ~config ~pipeline ~instrument coupling job)
      jobs
  in
  let t0 = wall () in
  let domains = max 1 (min domains (max 1 (Array.length jobs))) in
  let { Scheduler.results; stats } = Scheduler.run_report ~domains thunks in
  {
    outcomes = results;
    wall_s = wall () -. t0;
    domains;
    domain_stats = stats;
  }
