module Gate = Quantum.Gate
module Circuit = Quantum.Circuit

let random_graph ?(seed = 1) ~n ~edge_prob () =
  if n < 2 then invalid_arg "Qaoa.random_graph: need >= 2 vertices";
  if edge_prob < 0.0 || edge_prob > 1.0 then
    invalid_arg "Qaoa.random_graph: probability out of range";
  let rng = Random.State.make [| seed; n; 0xA0A |] in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < edge_prob then edges := (i, j) :: !edges
    done
  done;
  List.rev !edges

let circuit ?(rounds = 2) ?(gamma = 0.35) ?(beta = 0.6) ~n ~edges () =
  if n < 2 then invalid_arg "Qaoa.circuit: need >= 2 qubits";
  if rounds < 1 then invalid_arg "Qaoa.circuit: need >= 1 round";
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a = b then
        invalid_arg "Qaoa.circuit: bad edge")
    edges;
  let gates = ref [] in
  let add g = gates := g :: !gates in
  for q = 0 to n - 1 do
    add (Gate.Single (H, q))
  done;
  for _ = 1 to rounds do
    List.iter
      (fun (a, b) ->
        add (Gate.Cnot (a, b));
        add (Gate.Single (Rz (2.0 *. gamma), b));
        add (Gate.Cnot (a, b)))
      edges;
    for q = 0 to n - 1 do
      add (Gate.Single (Rx (2.0 *. beta), q))
    done
  done;
  for q = 0 to n - 1 do
    add (Gate.Measure (q, q))
  done;
  Circuit.create ~n_qubits:n ~n_clbits:n (List.rev !gates)

let maxcut_instance ?(seed = 1) ~n ~edge_prob () =
  circuit ~n ~edges:(random_graph ~seed ~n ~edge_prob ()) ()
