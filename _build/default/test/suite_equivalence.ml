module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Equivalence = Sim.Equivalence

let check = Alcotest.check
let tc = Alcotest.test_case

let test_circuits_equivalent_reflexive () =
  let c = Workloads.Qft.circuit 4 in
  check Alcotest.bool "self" true (Equivalence.circuits_equivalent c c)

let test_circuits_equivalent_detects_difference () =
  let a = Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1) ] in
  let b = Circuit.create ~n_qubits:2 [ Gate.Cnot (1, 0) ] in
  check Alcotest.bool "different" false (Equivalence.circuits_equivalent a b);
  let widths = Circuit.create ~n_qubits:3 [ Gate.Cnot (0, 1) ] in
  check Alcotest.bool "width mismatch" false
    (Equivalence.circuits_equivalent a widths)

let test_commuted_gates_equivalent () =
  let a =
    Circuit.create ~n_qubits:2 [ Gate.Single (H, 0); Gate.Single (T, 1) ]
  in
  let b =
    Circuit.create ~n_qubits:2 [ Gate.Single (T, 1); Gate.Single (H, 0) ]
  in
  check Alcotest.bool "commuted" true (Equivalence.circuits_equivalent a b)

let test_routed_identity () =
  (* physical = logical, identity mappings *)
  let c = Workloads.Ghz.circuit 3 in
  check Alcotest.bool "trivial routing" true
    (Equivalence.routed_equivalent ~initial:[| 0; 1; 2 |] ~final:[| 0; 1; 2 |]
       ~logical:c ~physical:c ())

let test_routed_fig3 () =
  let logical =
    Circuit.create ~n_qubits:4
      [
        Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
        Gate.Cnot (1, 2); Gate.Cnot (2, 3); Gate.Cnot (0, 3);
      ]
  in
  let physical =
    Circuit.create ~n_qubits:4
      [
        Gate.Cnot (0, 1); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
        Gate.Swap (0, 1);
        Gate.Cnot (0, 2); Gate.Cnot (2, 3); Gate.Cnot (1, 3);
      ]
  in
  check Alcotest.bool "fig3" true
    (Equivalence.routed_equivalent ~initial:[| 0; 1; 2; 3 |]
       ~final:[| 1; 0; 2; 3 |] ~logical ~physical ())

let test_routed_wrong_final_detected () =
  let logical = Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1) ] in
  let physical =
    Circuit.create ~n_qubits:2 [ Gate.Swap (0, 1); Gate.Cnot (1, 0) ]
  in
  (* correct final mapping is swapped *)
  check Alcotest.bool "correct accepted" true
    (Equivalence.routed_equivalent ~initial:[| 0; 1 |] ~final:[| 1; 0 |]
       ~logical ~physical ());
  check Alcotest.bool "wrong rejected" false
    (Equivalence.routed_equivalent ~initial:[| 0; 1 |] ~final:[| 0; 1 |]
       ~logical ~physical ())

let test_routed_wider_device () =
  (* 2 logical qubits on a 4-qubit device, non-trivial placement *)
  let logical =
    Circuit.create ~n_qubits:2 [ Gate.Single (H, 0); Gate.Cnot (0, 1) ]
  in
  let physical =
    Circuit.create ~n_qubits:4 [ Gate.Single (H, 3); Gate.Cnot (3, 1) ]
  in
  check Alcotest.bool "embedded" true
    (Equivalence.routed_equivalent ~initial:[| 3; 1 |] ~final:[| 3; 1 |]
       ~logical ~physical ())

let test_routed_measurements_ignored () =
  let logical =
    Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1); Gate.Measure (0, 0) ]
  in
  let physical =
    Circuit.create ~n_qubits:2 [ Gate.Cnot (0, 1); Gate.Measure (0, 0) ]
  in
  check Alcotest.bool "measures dropped" true
    (Equivalence.routed_equivalent ~initial:[| 0; 1 |] ~final:[| 0; 1 |]
       ~logical ~physical ())

let test_agrees_with_tracker_on_sabre_output () =
  (* end-to-end: SABRE route on a 5-qubit device; both verifiers agree *)
  let device = Hardware.Devices.ibm_q5_yorktown () in
  let c = Workloads.Qft.circuit 5 in
  let r = Sabre.Compiler.run device c in
  let initial = Sabre.Mapping.l2p_array r.initial_mapping in
  let final = Sabre.Mapping.l2p_array r.final_mapping in
  let tracker_ok =
    match
      Sim.Tracker.check ~coupling:device ~initial ~final ~logical:c
        ~physical:r.physical ()
    with
    | Ok () -> true
    | Error _ -> false
  in
  let sim_ok =
    Equivalence.routed_equivalent ~initial ~final ~logical:c
      ~physical:r.physical ()
  in
  check Alcotest.bool "tracker" true tracker_ok;
  check Alcotest.bool "statevector" true sim_ok

let suite =
  [
    tc "circuits_equivalent reflexive" `Quick test_circuits_equivalent_reflexive;
    tc "circuits_equivalent detects difference" `Quick
      test_circuits_equivalent_detects_difference;
    tc "commuted gates equivalent" `Quick test_commuted_gates_equivalent;
    tc "routed identity" `Quick test_routed_identity;
    tc "routed Fig. 3" `Quick test_routed_fig3;
    tc "routed wrong final detected" `Quick test_routed_wrong_final_detected;
    tc "routed on wider device" `Quick test_routed_wider_device;
    tc "measurements ignored" `Quick test_routed_measurements_ignored;
    tc "agrees with tracker on SABRE output" `Quick
      test_agrees_with_tracker_on_sabre_output;
  ]
