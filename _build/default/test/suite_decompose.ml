module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Decompose = Quantum.Decompose

let check = Alcotest.check
let tc = Alcotest.test_case

let equiv a b = Sim.Equivalence.circuits_equivalent a b

let test_swap_is_three_cnots () =
  let g = Decompose.swap_to_cnots 0 1 in
  check Alcotest.int "three gates" 3 (List.length g);
  List.iter
    (fun gate -> check Alcotest.bool "cnot" true (Gate.name gate = "cx"))
    g

let test_swap_unitary () =
  let direct = Circuit.create ~n_qubits:2 [ Gate.Swap (0, 1) ] in
  let expanded = Circuit.create ~n_qubits:2 (Decompose.swap_to_cnots 0 1) in
  check Alcotest.bool "equivalent" true (equiv direct expanded)

let test_cz_unitary () =
  let direct = Circuit.create ~n_qubits:2 [ Gate.Cz (0, 1) ] in
  let expanded = Circuit.create ~n_qubits:2 (Decompose.cz_to_cnot 0 1) in
  check Alcotest.bool "equivalent" true (equiv direct expanded)

let test_cz_symmetric () =
  let ab = Circuit.create ~n_qubits:2 [ Gate.Cz (0, 1) ] in
  let ba = Circuit.create ~n_qubits:2 [ Gate.Cz (1, 0) ] in
  check Alcotest.bool "cz direction-free" true (equiv ab ba)

let test_cphase_unitary () =
  (* cphase(pi) = CZ *)
  let cz = Circuit.create ~n_qubits:2 [ Gate.Cz (0, 1) ] in
  let cp = Circuit.create ~n_qubits:2 (Decompose.cphase Float.pi 0 1) in
  check Alcotest.bool "cphase(pi) = cz" true (equiv cz cp)

let test_cphase_symmetric () =
  let a = Circuit.create ~n_qubits:2 (Decompose.cphase 0.7 0 1) in
  let b = Circuit.create ~n_qubits:2 (Decompose.cphase 0.7 1 0) in
  check Alcotest.bool "symmetric" true (equiv a b)

let toffoli_truth c1 c2 t n =
  (* check on all basis states that target flips iff both controls set *)
  let circuit = Circuit.create ~n_qubits:n (Decompose.toffoli c1 c2 t) in
  let ok = ref true in
  for k = 0 to (1 lsl n) - 1 do
    let s = Sim.Statevector.of_basis n k in
    Sim.Statevector.apply_circuit s circuit;
    let expected =
      if k land (1 lsl c1) <> 0 && k land (1 lsl c2) <> 0 then
        k lxor (1 lsl t)
      else k
    in
    let amp = Sim.Statevector.amplitude s expected in
    if Complex.norm amp < 0.999 then ok := false
  done;
  !ok

let test_toffoli_truth_table () =
  check Alcotest.bool "toffoli(0,1,2)" true (toffoli_truth 0 1 2 3);
  check Alcotest.bool "toffoli(2,0,1)" true (toffoli_truth 2 0 1 3)

let test_expand_swaps () =
  let c =
    Circuit.create ~n_qubits:3
      [ Gate.Single (H, 0); Gate.Swap (0, 2); Gate.Cnot (0, 1) ]
  in
  let e = Decompose.expand_swaps c in
  check Alcotest.int "5 gates" 5 (Circuit.length e);
  check Alcotest.bool "no swap left" true
    (List.for_all (fun g -> Gate.name g <> "swap") (Circuit.gates e));
  check Alcotest.bool "unitary preserved" true (equiv c e)

let test_expand_all () =
  let c =
    Circuit.create ~n_qubits:3 [ Gate.Cz (0, 1); Gate.Swap (1, 2) ]
  in
  let e = Decompose.expand_all c in
  check Alcotest.bool "only elementary" true
    (List.for_all
       (fun g -> match g with Gate.Single _ | Gate.Cnot _ -> true | _ -> false)
       (Circuit.gates e));
  check Alcotest.bool "unitary preserved" true (equiv c e)

let test_elementary_gate_count () =
  let c =
    Circuit.create ~n_qubits:3
      [
        Gate.Single (H, 0); Gate.Cnot (0, 1); Gate.Swap (1, 2); Gate.Cz (0, 1);
        Gate.Barrier [ 0; 1 ]; Gate.Measure (0, 0);
      ]
  in
  (* 1 + 1 + 3 + 3 + 0 + 0 *)
  check Alcotest.int "count" 8 (Decompose.elementary_gate_count c);
  check Alcotest.int "consistent with expansion" 8
    (Circuit.gate_count (Decompose.expand_all c))

let suite =
  [
    tc "swap = 3 cnots" `Quick test_swap_is_three_cnots;
    tc "swap unitary" `Quick test_swap_unitary;
    tc "cz unitary" `Quick test_cz_unitary;
    tc "cz symmetric" `Quick test_cz_symmetric;
    tc "cphase(pi) = cz" `Quick test_cphase_unitary;
    tc "cphase symmetric" `Quick test_cphase_symmetric;
    tc "toffoli truth table" `Quick test_toffoli_truth_table;
    tc "expand_swaps" `Quick test_expand_swaps;
    tc "expand_all" `Quick test_expand_all;
    tc "elementary_gate_count" `Quick test_elementary_gate_count;
  ]
