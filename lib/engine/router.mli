module Circuit = Quantum.Circuit
module Mapping = Sabre_core.Mapping

(** First-class routing algorithms.

    A router turns one initial mapping into one complete routing attempt
    ("trial"). The engine's {!Routing_pass} drives the multi-trial loop
    over any router; SABRE, the greedy shortest-path baseline and the
    BKA A* baseline all implement this interface, so they are
    interchangeable from the CLI and from custom pipelines. *)

type outcome = {
  physical : Circuit.t;
  trial_initial : Mapping.t;
      (** the mapping that seeded the final forward traversal *)
  final_mapping : Mapping.t;
  n_swaps : int;
  first_swaps : int;  (** SWAPs of the first forward traversal *)
  search_steps : int;
  fallback_swaps : int;
  traversals : int;  (** traversals this trial actually ran *)
  scoring : Sabre_core.Stats.scoring;
      (** inner-loop scorer accounting; {!Sabre_core.Stats.scoring_zero}
          for routers without a heuristic decision loop *)
}

exception Route_failed of string
(** Raised by a router that cannot complete (e.g. BKA exhausting its
    node budget, the paper's out-of-memory row). *)

module type S = sig
  val name : string

  val deterministic : bool
  (** A deterministic router ignores the trial's random initial mapping
      (or derives its own); the routing pass then runs a single trial. *)

  val derives_seed : bool
  (** Capability metadata for the seeder layer: [true] means the router
      derives its own starting placement instead of consuming the
      engine's random trial seeds (greedy reads program order, BKA runs
      its own beginning-of-circuit placement). Such a router may honour
      a pinned {!Context.t.fixed_initial} (greedy does) or ignore it
      outright (BKA does); seeders only change its result in the former
      case. *)

  val route : Context.t -> initial:Mapping.t -> outcome
  (** May raise {!Route_failed}. *)
end

type t = (module S)

val name : t -> string
val deterministic : t -> bool
val derives_seed : t -> bool

(** {2 Registry}

    Routers register under their name so frontends can look them up
    from a command-line string. The engine registers ["sabre"] itself;
    baselines register theirs via [Baseline.Routers.register]. *)

val register : t -> unit
val find : string -> t option
val names : unit -> string list

val find_suggest : string -> (t, string) result
(** Like {!find}, but a miss yields an error message listing the
    registered router names. *)
