lib/core/initial_mapping.ml: Array Fun Hardware List Mapping Quantum
