module Circuit = Quantum.Circuit
module Coupling = Hardware.Coupling
module Config = Sabre_core.Config
module Mapping = Sabre_core.Mapping
module Stats = Sabre_core.Stats

type routed = {
  physical : Circuit.t;
  trial_initial : Mapping.t;
  final_mapping : Mapping.t;
  n_swaps : int;
  first_swaps : int;
  search_steps : int;
  fallback_swaps : int;
  traversals_run : int;
  scoring : Stats.scoring;
}

type stats = {
  hits : int;
  misses : int;
  inflight_waits : int;
  insertions : int;
  evictions : int;
  entries : int;
  bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Key derivation                                                      *)
(* ------------------------------------------------------------------ *)

let scoring_mode_name = function
  | Sabre_core.Routing_pass.Delta -> "delta"
  | Sabre_core.Routing_pass.Full -> "full"

let key ~circuit ~coupling ~config ~scoring ~spec =
  (* every component is itself a canonical digest (or a short exact
     string), so the composite is collision-resistant iff MD5 is *)
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Circuit.digest circuit;
            Coupling.digest coupling;
            Config.digest config;
            scoring_mode_name scoring;
            spec;
          ]))

(* ------------------------------------------------------------------ *)
(* Sharded single-flight LRU store                                     *)
(* ------------------------------------------------------------------ *)

type entry = { routed : routed; cost : int; mutable tick : int }

(* [Pending] marks an in-flight route: the owner that installed it is
   computing; everyone else acquiring the same key blocks on the shard
   condition until the slot turns [Ready] (fill) or vanishes (abort). *)
type slot = Pending | Ready of entry

type shard = {
  lock : Mutex.t;
  cond : Condition.t;
  table : (string, slot) Hashtbl.t;
  mutable clock : int;
  mutable used : int;  (* bytes held by Ready entries *)
}

let n_shards = 8

let shards =
  Array.init n_shards (fun _ ->
      {
        lock = Mutex.create ();
        cond = Condition.create ();
        table = Hashtbl.create 64;
        clock = 0;
        used = 0;
      })

let shard_of key = shards.(Hashtbl.hash key mod n_shards)
let default_capacity_bytes = 256 * 1024 * 1024
let capacity = Atomic.make default_capacity_bytes
let hits = Atomic.make 0
let misses = Atomic.make 0
let inflight_waits = Atomic.make 0
let insertions = Atomic.make 0
let evictions = Atomic.make 0
let enabled () = Atomic.get capacity > 0
let shard_budget () = Atomic.get capacity / n_shards

(* Mappings are mutable (swap_physical_inplace), so both directions of
   the cache boundary copy them; the circuit and scoring records are
   immutable and shared. *)
let snapshot r =
  {
    r with
    trial_initial = Mapping.copy r.trial_initial;
    final_mapping = Mapping.copy r.final_mapping;
  }

(* caller holds [s.lock]; never evicts [keep] so that a fill stays
   visible to the waiters it just woke even when the new entry alone
   exceeds the shard budget *)
let evict_to_budget s ~keep =
  let budget = shard_budget () in
  while
    s.used > budget
    &&
    let victim =
      Hashtbl.fold
        (fun k slot acc ->
          match slot with
          | Pending -> acc
          | Ready e -> (
            if k = keep then acc
            else
              match acc with
              | Some (_, best) when best.tick <= e.tick -> acc
              | _ -> Some (k, e)))
        s.table None
    in
    match victim with
    | Some (k, e) ->
      Hashtbl.remove s.table k;
      s.used <- s.used - e.cost;
      Atomic.incr evictions;
      true
    | None -> false
  do
    ()
  done

let probe ~count_miss key =
  if not (enabled ()) then None
  else
    let s = shard_of key in
    Mutex.protect s.lock (fun () ->
        s.clock <- s.clock + 1;
        match Hashtbl.find_opt s.table key with
        | Some (Ready e) ->
          e.tick <- s.clock;
          Atomic.incr hits;
          Some (snapshot e.routed)
        | Some Pending ->
          (* a route is in flight: not a miss — the follow-up [acquire]
             classifies this probe (wait-resolved hit, or a miss if the
             owner aborts and we inherit the flight) *)
          None
        | None ->
          if count_miss then Atomic.incr misses;
          None)

let find key = probe ~count_miss:true key
let peek key = probe ~count_miss:false key

type acquired = Hit of routed * bool | Compute

let acquire key =
  let s = shard_of key in
  Mutex.protect s.lock (fun () ->
      let waited = ref false in
      let rec go () =
        s.clock <- s.clock + 1;
        match Hashtbl.find_opt s.table key with
        | Some (Ready e) ->
          e.tick <- s.clock;
          if !waited then (
            (* the in-flight owner delivered while we slept: a hit paid
               for with a wait, not with a route *)
            Atomic.incr hits;
            Hit (snapshot e.routed, true))
          else (
            Atomic.incr hits;
            Hit (snapshot e.routed, false))
        | Some Pending ->
          if not !waited then (
            waited := true;
            Atomic.incr inflight_waits);
          Condition.wait s.cond s.lock;
          go ()
        | None ->
          (* claim the flight. A probe that saw [None] already counted
             the miss; a probe that landed on the (now aborted) flight
             counted nothing, so the inheriting waiter counts it here. *)
          if !waited then Atomic.incr misses;
          Hashtbl.replace s.table key Pending;
          Compute
      in
      go ())

let abort key =
  let s = shard_of key in
  Mutex.protect s.lock (fun () ->
      (match Hashtbl.find_opt s.table key with
      | Some Pending -> Hashtbl.remove s.table key
      | Some (Ready _) | None -> ());
      Condition.broadcast s.cond)

let fill key routed =
  if not (enabled ()) then abort key
  else begin
    let stored = snapshot routed in
    (* cost accounting outside the lock: reachable_words walks the whole
       result *)
    let cost = Obj.reachable_words (Obj.repr stored) * (Sys.word_size / 8) in
    let s = shard_of key in
    Mutex.protect s.lock (fun () ->
        s.clock <- s.clock + 1;
        (match Hashtbl.find_opt s.table key with
        | Some (Ready old) -> s.used <- s.used - old.cost
        | Some Pending | None -> ());
        Hashtbl.replace s.table key
          (Ready { routed = stored; cost; tick = s.clock });
        s.used <- s.used + cost;
        Atomic.incr insertions;
        evict_to_budget s ~keep:key;
        Condition.broadcast s.cond)
  end

let set_capacity_bytes n =
  if n < 0 then invalid_arg "Compile_cache.set_capacity_bytes: negative";
  Atomic.set capacity n;
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          if n = 0 then (
            (* keep Pending slots: in-flight owners must still find
               their claim to resolve or abort it *)
            let victims =
              Hashtbl.fold
                (fun k slot acc ->
                  match slot with Ready e -> (k, e) :: acc | Pending -> acc)
                s.table []
            in
            List.iter
              (fun (k, e) ->
                Hashtbl.remove s.table k;
                s.used <- s.used - e.cost;
                Atomic.incr evictions)
              victims)
          else evict_to_budget s ~keep:""))
    shards

let set_capacity_mb mb = set_capacity_bytes (mb * 1024 * 1024)
let capacity_bytes () = Atomic.get capacity

let stats () =
  let entries = ref 0 and bytes = ref 0 in
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.iter
            (fun _ slot ->
              match slot with
              | Ready e ->
                incr entries;
                bytes := !bytes + e.cost
              | Pending -> ())
            s.table))
    shards;
  {
    hits = Atomic.get hits;
    misses = Atomic.get misses;
    inflight_waits = Atomic.get inflight_waits;
    insertions = Atomic.get insertions;
    evictions = Atomic.get evictions;
    entries = !entries;
    bytes = !bytes;
  }

let reset_stats () =
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set inflight_waits 0;
  Atomic.set insertions 0;
  Atomic.set evictions 0

let clear () =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          let victims =
            Hashtbl.fold
              (fun k slot acc ->
                match slot with Ready e -> (k, e) :: acc | Pending -> acc)
              s.table []
          in
          List.iter
            (fun (k, e) ->
              Hashtbl.remove s.table k;
              s.used <- s.used - e.cost)
            victims;
          Condition.broadcast s.cond))
    shards;
  reset_stats ()
