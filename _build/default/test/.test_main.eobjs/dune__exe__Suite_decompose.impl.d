test/suite_decompose.ml: Alcotest Complex Float List Quantum Sim
