lib/quantum/qasm.mli: Circuit
