(* Speculative racing: the cooperative cancellation hook, the shared
   incumbent register, and racing portfolio runs.

   The load-bearing contracts: a Stop verdict aborts a route via
   [Cancelled] while leaving the scratch arena reusable (a subsequent
   run on it is byte-identical to a fresh-arena run); incumbent-bound
   pruning never changes the winner or any completing entry's result;
   and a pruned entry is reported with the sentinel cancellation
   message, never a fabricated outcome. *)

module Gate = Quantum.Gate
module Circuit = Quantum.Circuit
module Dag = Quantum.Dag
module Coupling = Hardware.Coupling
module Devices = Hardware.Devices
module Mapping = Sabre.Mapping
module Config = Sabre.Config
module Routing_pass = Sabre.Routing_pass
module Engine = Sabre.Engine
module Race = Sabre.Engine.Race
module Portfolio = Sabre.Engine.Portfolio

let check = Alcotest.check
let tc = Alcotest.test_case
let () = Baseline.Routers.register ()

let device = Devices.ibm_q20_tokyo ()
let ring = Devices.ring 8

(* a circuit that needs real routing work on the ring: long enough
   that the every=1 hook sees many decisions *)
let busy_circuit = Helpers.random_circuit ~seed:42 ~n:8 ~gates:60

let fixed_initial coupling circuit =
  Mapping.random
    ~state:(Random.State.make [| 0xace; 7 |])
    ~n_logical:(Circuit.n_qubits circuit)
    ~n_physical:(Coupling.n_qubits coupling)

let route_fresh ?hook coupling circuit initial =
  Routing_pass.run_flat ?hook Config.default coupling
    (Dag.of_circuit circuit) initial

let results_equal (a : Routing_pass.result) (b : Routing_pass.result) =
  Circuit.equal a.Routing_pass.physical b.Routing_pass.physical
  && Mapping.equal a.Routing_pass.final_mapping b.Routing_pass.final_mapping
  && a.Routing_pass.n_swaps = b.Routing_pass.n_swaps
  && a.Routing_pass.search_steps = b.Routing_pass.search_steps

(* ------------------------------------------------------------------ *)
(* The progress hook                                                    *)
(* ------------------------------------------------------------------ *)

let test_hook_counters_monotone () =
  let initial = fixed_initial ring busy_circuit in
  let calls = ref 0 in
  let last = ref { Routing_pass.swaps = -1; decisions = -1; depth_lb = -1 } in
  let hook =
    {
      Routing_pass.every = 1;
      notify =
        (fun p ->
          incr calls;
          check Alcotest.bool "decisions strictly increase" true
            (p.Routing_pass.decisions > !last.Routing_pass.decisions);
          check Alcotest.bool "swaps never decrease" true
            (p.Routing_pass.swaps >= !last.Routing_pass.swaps);
          check Alcotest.bool "depth_lb never decreases" true
            (p.Routing_pass.depth_lb >= !last.Routing_pass.depth_lb);
          last := p;
          Routing_pass.Continue);
    }
  in
  let r = route_fresh ~hook ring busy_circuit initial in
  check Alcotest.bool "hook was invoked" true (!calls > 0);
  check Alcotest.int "every decision notified" r.Routing_pass.search_steps
    !calls;
  check Alcotest.bool "final swaps bounded by result" true
    (!last.Routing_pass.swaps <= r.Routing_pass.n_swaps);
  (* a hook that only observes must not perturb the route *)
  let plain = route_fresh ring busy_circuit initial in
  check Alcotest.bool "observing hook is routing-neutral" true
    (results_equal r plain)

let test_hook_stop_raises_cancelled () =
  let initial = fixed_initial ring busy_circuit in
  match
    route_fresh
      ~hook:{ Routing_pass.every = 1; notify = (fun _ -> Routing_pass.Stop) }
      ring busy_circuit initial
  with
  | _ -> Alcotest.fail "Stop verdict did not abort the run"
  | exception Routing_pass.Cancelled -> ()

let test_cancelled_scratch_reusable () =
  (* cancel a run mid-route at several depths, then reuse the same
     arena: the next run must be byte-identical to a fresh-arena run *)
  let initial = fixed_initial ring busy_circuit in
  let reference = route_fresh ring busy_circuit initial in
  check Alcotest.bool "instance exercises the router" true
    (reference.Routing_pass.n_swaps > 0);
  List.iter
    (fun stop_after ->
      let scratch = Routing_pass.Scratch.create ring in
      let seen = ref 0 in
      let hook =
        {
          Routing_pass.every = 1;
          notify =
            (fun _ ->
              incr seen;
              if !seen >= stop_after then Routing_pass.Stop
              else Routing_pass.Continue);
        }
      in
      (match
         Routing_pass.run_with_scratch ~scratch ~hook Config.default ring
           (Dag.of_circuit busy_circuit) initial
       with
      | _ -> Alcotest.failf "no Cancelled at stop_after=%d" stop_after
      | exception Routing_pass.Cancelled -> ());
      let again =
        Routing_pass.run_with_scratch ~scratch Config.default ring
          (Dag.of_circuit busy_circuit) initial
      in
      check Alcotest.bool
        (Printf.sprintf "arena reusable after cancel at decision %d"
           stop_after)
        true
        (results_equal again reference))
    [ 1; 3; 10 ]

(* ------------------------------------------------------------------ *)
(* Race tokens and the incumbent register                               *)
(* ------------------------------------------------------------------ *)

let test_token_hard_cancel () =
  let t = Race.token () in
  check Alcotest.bool "fresh token live" false (Race.cancelled t);
  check Alcotest.bool "fresh token claims" false (Race.skip_at_claim t);
  Race.cancel t;
  check Alcotest.bool "cancel latches" true (Race.cancelled t);
  check Alcotest.bool "cancel skips at claim" true (Race.skip_at_claim t)

let test_token_probe_latches () =
  let flag = ref false in
  let t = Race.token ~should_stop:(fun () -> !flag) () in
  check Alcotest.bool "probe false: live" false (Race.cancelled t);
  check Alcotest.bool "no latch yet" false (Race.was_cancelled t);
  flag := true;
  check Alcotest.bool "probe true: cancelled" true (Race.cancelled t);
  flag := false;
  check Alcotest.bool "probe result latched" true (Race.was_cancelled t);
  check Alcotest.bool "cancelled stays latched" true (Race.cancelled t)

let progress ~swaps ~depth_lb =
  { Routing_pass.swaps; decisions = 0; depth_lb }

let certify t =
  (* enter the state where the running counters bound the reported
     value: the last trial's final forward traversal *)
  Race.note_trial t ~last:true;
  Race.note_traversal t ~final:true

let test_incumbent_prunes_certified_loser () =
  let g = Race.group () in
  let t0 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:0 () in
  let t1 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:1 () in
  certify t1;
  let h1 = Race.hook t1 in
  check Alcotest.bool "no incumbent: never stop" true
    (h1.Routing_pass.notify (progress ~swaps:1000 ~depth_lb:0)
     = Routing_pass.Continue);
  Race.complete t0 ~swaps:5 ~depth:0;
  check Alcotest.bool "bound below incumbent: continue" true
    (h1.Routing_pass.notify (progress ~swaps:4 ~depth_lb:0)
     = Routing_pass.Continue);
  (* equal value, higher index: loses the first-best tie-break *)
  check Alcotest.bool "tie at higher index: stop" true
    (h1.Routing_pass.notify (progress ~swaps:5 ~depth_lb:0)
     = Routing_pass.Stop);
  check Alcotest.bool "pruned token reports cancelled" true
    (Race.was_cancelled t1)

let test_incumbent_respects_tie_break_order () =
  (* the EARLIER entry ties with a completed later one: it may still
     win the tie-break, so it must not be pruned at equal value *)
  let g = Race.group () in
  let t0 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:0 () in
  let t1 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:1 () in
  Race.complete t1 ~swaps:5 ~depth:0;
  certify t0;
  let h0 = Race.hook t0 in
  check Alcotest.bool "tie at lower index: continue" true
    (h0.Routing_pass.notify (progress ~swaps:5 ~depth_lb:0)
     = Routing_pass.Continue);
  check Alcotest.bool "strictly worse: stop" true
    (h0.Routing_pass.notify (progress ~swaps:6 ~depth_lb:0)
     = Routing_pass.Stop)

let test_uncertified_counters_never_prune () =
  (* outside the last trial's final forward traversal the counters say
     nothing about the reported value — only the trivial bound 0 holds *)
  let g = Race.group () in
  let t0 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:0 () in
  let t1 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:1 () in
  Race.complete t0 ~swaps:5 ~depth:0;
  let h1 = Race.hook t1 in
  (* not in any trial yet *)
  check Alcotest.bool "no trial: huge counters ignored" true
    (h1.Routing_pass.notify (progress ~swaps:1000 ~depth_lb:0)
     = Routing_pass.Continue);
  (* non-final trial *)
  Race.note_trial t1 ~last:false;
  Race.note_traversal t1 ~final:true;
  check Alcotest.bool "non-last trial: counters ignored" true
    (h1.Routing_pass.notify (progress ~swaps:1000 ~depth_lb:0)
     = Routing_pass.Continue);
  (* last trial but a non-final (reverse) traversal *)
  Race.note_trial t1 ~last:true;
  Race.note_traversal t1 ~final:false;
  check Alcotest.bool "non-final traversal: counters ignored" true
    (h1.Routing_pass.notify (progress ~swaps:1000 ~depth_lb:0)
     = Routing_pass.Continue)

let test_completed_trial_caps_the_bound () =
  (* the entry's value is the min over all trials, so a completed
     trial CAPS the certified bound: during the last trial's final
     traversal the bound is min(completed trials' best, counter) *)
  let g = Race.group () in
  let t0 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:0 () in
  let t1 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:1 () in
  Race.complete t0 ~swaps:5 ~depth:0;
  Race.note_trial t1 ~last:false;
  Race.note_traversal t1 ~final:true;
  Race.note_trial_done t1 ~swaps:9 ~depth:0;
  let h1 = Race.hook t1 in
  (* between trials nothing is certified: a future trial may still
     beat both the completed one and the incumbent *)
  check Alcotest.bool "between trials: never stop" true
    (h1.Routing_pass.notify (progress ~swaps:0 ~depth_lb:0)
     = Routing_pass.Continue);
  certify t1;
  (* counter 6 > incumbent 5, completed min 9: bound min(9,6)=6 → stop *)
  check Alcotest.bool "certified counter above incumbent: stop" true
    (h1.Routing_pass.notify (progress ~swaps:6 ~depth_lb:0)
     = Routing_pass.Stop);
  (* a good completed trial keeps the entry alive however bad the
     in-flight counter gets: its reported value is already <= 3 *)
  let t2 = Race.entry ~group:g ~bound:Race.Swaps_bound ~index:2 () in
  Race.note_trial t2 ~last:false;
  Race.note_traversal t2 ~final:true;
  Race.note_trial_done t2 ~swaps:3 ~depth:0;
  certify t2;
  let h2 = Race.hook t2 in
  check Alcotest.bool "good completed trial caps the bound: continue" true
    (h2.Routing_pass.notify (progress ~swaps:1000 ~depth_lb:0)
     = Routing_pass.Continue)

let test_depth_bound_uses_depth_counter () =
  let g = Race.group () in
  let t0 = Race.entry ~group:g ~bound:Race.Depth_bound ~index:0 () in
  let t1 = Race.entry ~group:g ~bound:Race.Depth_bound ~index:1 () in
  check Alcotest.bool "depth token wants depth" true (Race.needs_depth t1);
  check Alcotest.bool "swaps token does not" false
    (Race.needs_depth (Race.entry ~group:g ~bound:Race.Swaps_bound ~index:3 ()));
  Race.complete t0 ~swaps:0 ~depth:12;
  certify t1;
  let h1 = Race.hook t1 in
  check Alcotest.bool "depth below incumbent: continue" true
    (h1.Routing_pass.notify (progress ~swaps:1000 ~depth_lb:11)
     = Routing_pass.Continue);
  check Alcotest.bool "depth at incumbent, higher index: stop" true
    (h1.Routing_pass.notify (progress ~swaps:0 ~depth_lb:12)
     = Routing_pass.Stop)

let test_entry_index_range () =
  let g = Race.group () in
  (match Race.entry ~group:g ~bound:Race.Swaps_bound ~index:(1 lsl Race.index_bits) () with
  | _ -> Alcotest.fail "oversized index accepted"
  | exception Invalid_argument _ -> ());
  match Race.entry ~group:g ~bound:Race.Swaps_bound ~index:(-1) () with
  | _ -> Alcotest.fail "negative index accepted"
  | exception Invalid_argument _ -> ()

let test_scheduler_claim_skip () =
  let ran = Array.make 5 false in
  let jobs =
    Array.init 5 (fun i () ->
        ran.(i) <- true;
        i * 10)
  in
  let out =
    Engine.Scheduler.run_cancellable ~cancelled:(fun i -> i = 1 || i = 3)
      ~domains:2 jobs
  in
  Array.iteri
    (fun i o ->
      if i = 1 || i = 3 then begin
        check Alcotest.bool (Printf.sprintf "job %d skipped" i) false ran.(i);
        check Alcotest.bool (Printf.sprintf "slot %d empty" i) true (o = None)
      end
      else
        check Alcotest.bool (Printf.sprintf "job %d ran" i) true
          (o = Some (i * 10)))
    out

(* ------------------------------------------------------------------ *)
(* Racing portfolio runs                                                *)
(* ------------------------------------------------------------------ *)

(* a fast strong first entry plus slower single-pass baselines: the
   shape that makes pruning observable (see bench racing) *)
let racing_spec = "sabre/iso:trials=1,traversals=1,hail,hail/degree"

let racing_entries =
  match Portfolio.parse_spec racing_spec with
  | Ok es -> es
  | Error msg -> failwith ("racing spec rejected: " ^ msg)

let outcome_equal a b =
  match (a, b) with
  | Ok (a : Portfolio.member), Ok (b : Portfolio.member) ->
    Circuit.equal a.Portfolio.physical b.Portfolio.physical
    && a.Portfolio.n_swaps = b.Portfolio.n_swaps
    && a.Portfolio.depth = b.Portfolio.depth
  | Error a, Error b -> a = b
  | _ -> false

let test_race_preserves_winner () =
  List.iter
    (fun name ->
      let circuit = Lazy.force (Workloads.Suite.find name).circuit in
      let run ~race ~domains =
        Portfolio.run ~race ~domains ~config:Config.default device circuit
          racing_entries
      in
      let plain = run ~race:false ~domains:1 in
      check Alcotest.bool (name ^ ": plain run not racing") false
        plain.Portfolio.race;
      List.iter
        (fun domains ->
          let raced = run ~race:true ~domains in
          check Alcotest.bool (name ^ ": raced run flagged") true
            raced.Portfolio.race;
          check Alcotest.int
            (Printf.sprintf "%s: same winner at %d domains" name domains)
            plain.Portfolio.winner raced.Portfolio.winner;
          check Alcotest.bool (name ^ ": winner byte-identical") true
            (outcome_equal
               plain.Portfolio.outcomes.(plain.Portfolio.winner)
               raced.Portfolio.outcomes.(raced.Portfolio.winner));
          Array.iteri
            (fun i o ->
              match (plain.Portfolio.outcomes.(i), o) with
              | Ok _, Error msg ->
                check Alcotest.string
                  (Printf.sprintf "%s: entry %d only ever pruned" name i)
                  Portfolio.cancelled_msg msg;
                check Alcotest.bool
                  (Printf.sprintf "%s: entry %d stat says cancelled" name i)
                  true
                  raced.Portfolio.entry_stats.(i).Portfolio.e_cancelled
              | p, r ->
                check Alcotest.bool
                  (Printf.sprintf "%s: entry %d result unchanged" name i)
                  true (outcome_equal p r))
            raced.Portfolio.outcomes)
        [ 1; 2 ])
    [ "4mod5-v1_22"; "qft_10" ]

let test_hard_cancel_portfolio () =
  (* a pre-fired cancel probe stops every entry before any completes *)
  let circuit = Lazy.force (Workloads.Suite.find "4mod5-v1_22").circuit in
  (match
     Portfolio.run ~config:Config.default ~cancel:(fun () -> true) device
       circuit racing_entries
   with
  | _ -> Alcotest.fail "fully cancelled portfolio still produced a winner"
  | exception Engine.Router.Route_failed _ -> ());
  (* a never-firing probe changes nothing *)
  let plain =
    Portfolio.run ~config:Config.default device circuit racing_entries
  in
  let tokened =
    Portfolio.run ~config:Config.default ~cancel:(fun () -> false) device
      circuit racing_entries
  in
  check Alcotest.int "same winner under idle probe" plain.Portfolio.winner
    tokened.Portfolio.winner;
  check Alcotest.bool "same outcomes under idle probe" true
    (Array.for_all2 outcome_equal plain.Portfolio.outcomes
       tokened.Portfolio.outcomes)

(* ------------------------------------------------------------------ *)
(* Override parsing                                                     *)
(* ------------------------------------------------------------------ *)

let test_parse_spec_overrides () =
  (match Portfolio.parse_spec racing_spec with
  | Ok [ e0; e1; e2 ] ->
    check Alcotest.string "router" "sabre" e0.Portfolio.router;
    check Alcotest.string "seeder" "iso" e0.Portfolio.seeder;
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
      "overrides parsed in order"
      [ ("trials", "1"); ("traversals", "1") ]
      e0.Portfolio.overrides;
    check Alcotest.bool "plain entries keep no overrides" true
      (e1.Portfolio.overrides = [] && e2.Portfolio.overrides = []);
    check Alcotest.string "entry_name shows deltas"
      "sabre/iso:trials=1,traversals=1" (Portfolio.entry_name e0)
  | Ok es -> Alcotest.failf "expected 3 entries, got %d" (List.length es)
  | Error msg -> Alcotest.failf "spec rejected: %s" msg);
  List.iter
    (fun bad ->
      match Portfolio.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error msg ->
        check Alcotest.bool "error non-empty" true (String.length msg > 0))
    [
      "sabre:warp=1";          (* unknown key *)
      "sabre:trials=zero";     (* malformed value *)
      "sabre:trials=0";        (* fails Config.validate *)
      "sabre:";                (* empty override list *)
      "trials=1";              (* continuation with no entry to continue *)
    ];
  match Portfolio.parse_spec "sabre:warp=1" with
  | Ok _ -> assert false
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "unknown key names the culprit" true
      (contains msg "warp");
    check Alcotest.bool "unknown key lists a real key" true
      (contains msg "trials")

let test_apply_overrides () =
  (match
     Portfolio.apply_overrides Config.default
       [
         ("trials", "2"); ("traversals", "5"); ("heuristic", "basic");
         ("stall-limit", "none"); ("commutation-aware", "true");
         ("seed", "7");
       ]
   with
  | Ok c ->
    check Alcotest.int "trials" 2 c.Config.trials;
    check Alcotest.int "traversals" 5 c.Config.traversals;
    check Alcotest.bool "heuristic" true (c.Config.heuristic = Config.Basic);
    check Alcotest.bool "stall-limit none" true (c.Config.stall_limit = None);
    check Alcotest.bool "commutation-aware" true c.Config.commutation_aware;
    check Alcotest.int "seed" 7 c.Config.seed
  | Error msg -> Alcotest.failf "good overrides rejected: %s" msg);
  check Alcotest.bool "empty overrides are identity" true
    (Portfolio.apply_overrides Config.default [] = Ok Config.default);
  match Portfolio.apply_overrides Config.default [ ("traversals", "2") ] with
  | Ok _ -> Alcotest.fail "even traversal count passed validation"
  | Error msg ->
    check Alcotest.bool "invalid config names the rule" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)

let suite =
  [
    tc "hook: counters are monotone and observation is neutral" `Quick
      test_hook_counters_monotone;
    tc "hook: Stop raises Cancelled" `Quick test_hook_stop_raises_cancelled;
    tc "cancelled run leaves the scratch arena byte-reusable" `Quick
      test_cancelled_scratch_reusable;
    tc "token: hard cancel latches and skips at claim" `Quick
      test_token_hard_cancel;
    tc "token: should_stop probe latches" `Quick test_token_probe_latches;
    tc "incumbent prunes a certified loser" `Quick
      test_incumbent_prunes_certified_loser;
    tc "incumbent respects first-best tie-break order" `Quick
      test_incumbent_respects_tie_break_order;
    tc "uncertified counters never prune" `Quick
      test_uncertified_counters_never_prune;
    tc "a completed trial caps the certified bound" `Quick
      test_completed_trial_caps_the_bound;
    tc "depth objective prunes on the depth counter" `Quick
      test_depth_bound_uses_depth_counter;
    tc "entry index must fit index_bits" `Quick test_entry_index_range;
    tc "run_cancellable skips at claim time" `Quick test_scheduler_claim_skip;
    tc "racing preserves winner and completing outcomes" `Slow
      test_race_preserves_winner;
    tc "hard cancel: all-stopped raises, idle probe is neutral" `Quick
      test_hard_cancel_portfolio;
    tc "parse_spec: per-entry overrides" `Quick test_parse_spec_overrides;
    tc "apply_overrides: typed keys and re-validation" `Quick
      test_apply_overrides;
  ]
