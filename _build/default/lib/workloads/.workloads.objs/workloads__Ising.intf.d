lib/workloads/ising.mli: Quantum
