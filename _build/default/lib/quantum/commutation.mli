(** Gate commutation rules.

    The paper's DAG (§IV-A) orders any two gates that share a qubit. That
    is stricter than physics requires: CNOTs sharing a control commute,
    CNOTs sharing a target commute, diagonal gates commute through CNOT
    controls, X-axis gates through CNOT targets. A router that knows this
    has more freedom in choosing what to execute next — the
    commutation-aware mode of {!Dag.of_circuit_commuting} (an extension
    in the spirit of the paper's §VI future work; later SABRE variants
    adopted exactly this).

    {!commute} is a sound under-approximation: [true] guarantees the two
    gates commute as operators (verified exhaustively against the
    state-vector simulator in the test suite); [false] merely means we
    don't claim they do. *)

val commute : Gate.t -> Gate.t -> bool
(** [commute a b] — do [a·b] and [b·a] implement the same unitary?
    Gates on disjoint qubits always commute. Barriers and measurements
    never commute with anything sharing a qubit. *)

val diagonal : Gate.t -> bool
(** Gates represented by a diagonal matrix in the computational basis
    (Z, S, S†, T, T†, Rz, U1, I, CZ). Diagonal gates all commute with
    each other. *)

val x_axis : Gate.single_kind -> bool
(** Single-qubit kinds diagonal in the X basis (X, Rx, I): they commute
    through a CNOT's target. *)
